//! The UVM runtime state machine: batched fault processing, migration
//! scheduling, and the three eviction engines.
//!
//! The runtime mirrors the driver control flow the paper analyzes:
//!
//! 1. A fault arrives ([`UvmRuntime::record_fault`]); if the runtime is
//!    idle a **batch** starts: the fault buffer drains, faults are sorted
//!    and deduplicated, prefetches are inserted, and the *GPU runtime fault
//!    handling time* elapses ([`UvmEvent::HandlingDone`]).
//! 2. Migrations are scheduled on the PCIe host-to-device pipe. When device
//!    memory is at capacity each needed frame comes from an eviction, whose
//!    scheduling depends on the
//!    [`EvictionPolicy`]:
//!    * `SerializedLru` — the eviction transfer blocks the host-to-device
//!      pipe (Fig. 4: migration begins only after the eviction completes);
//!    * `Unobtrusive` — one preemptive eviction is issued at batch start
//!      (overlapping the handling window) and further evictions pipeline on
//!      the device-to-host direction (Fig. 10);
//!    * `Ideal` — frames free instantly (Fig. 8's limit study).
//! 3. Each arrival ([`UvmEvent::PageArrived`]) installs the page; after the
//!    last one the batch closes and, if faults accumulated meanwhile, the
//!    next batch starts immediately (the driver's replay optimization).
//!
//! The runtime never touches the MMU or event queue directly: it returns
//! [`UvmOutput`] commands that the engine applies, keeping this crate
//! independently testable.
//!
//! All entry points are fallible: an event that contradicts the state
//! machine or the residency books returns a [`SimError`] carrying the
//! cycle, event, and state at the point of failure instead of panicking.
//! [`UvmRuntime::set_audit`] additionally re-derives the runtime's
//! conservation laws after every event, and [`UvmRuntime::set_injector`]
//! arms deterministic fault injection for robustness tests.
//!
//! Observation goes through the probe layer: every fault, batch
//! open/close, migration, eviction (with its cause and pinned/premature
//! classification) is emitted as a
//! [`ProbeEvent`](batmem_types::probe::ProbeEvent) on the
//! [`SharedProbes`] handle installed by [`UvmRuntime::set_probes`] —
//! [`UvmStats`] is merely the built-in aggregate of the same stream.

use crate::batch::BatchRecord;
use crate::fault::FaultBuffer;
use crate::inject::{FaultInjector, InjectConfig, InjectStats};
use crate::lifetime::{LifetimeSample, LifetimeTracker};
use crate::memmgr::MemoryManager;
use crate::pcie::PciePipes;
use crate::prefetch::TreePrefetcher;
use crate::stats::UvmStats;
use batmem_types::config::UvmConfig;
use batmem_types::dense::{EpochPageMap, EpochPageSet, PageMap};
use batmem_types::policy::{EvictionPolicy, PolicyConfig, PrefetchPolicy};
use batmem_types::probe::{EvictionCause, ProbeEvent, SharedProbes};
use batmem_types::{AuditLevel, Cycle, FrameId, PageId, SimError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Events the runtime schedules for itself through the engine's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvmEvent {
    /// The top-half ISR responds to the fault interrupt: drain the buffer
    /// and begin a batch. Faults raised during the interrupt-delivery
    /// window join the batch.
    DrainBuffer,
    /// Preprocessing and CPU page-table walks for a batch finished.
    HandlingDone {
        /// The batch's sequence number.
        batch: u64,
    },
    /// A page's host-to-device transfer completed.
    PageArrived {
        /// The migrated page.
        page: PageId,
    },
    /// An eviction transfer began; the page must leave the GPU page table
    /// now (subsequent accesses fault).
    EvictionStarted {
        /// The evicted page.
        page: PageId,
    },
}

/// Commands the runtime returns for the engine to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvmOutput {
    /// Enqueue `event` at time `at`.
    Schedule {
        /// Delivery time.
        at: Cycle,
        /// The event to deliver back to the runtime.
        event: UvmEvent,
    },
    /// Install `page -> frame` in the GPU page table and wake its waiters.
    Install {
        /// The arrived page.
        page: PageId,
        /// The frame it occupies.
        frame: FrameId,
    },
    /// Remove `page` from the GPU page table (with TLB shootdown).
    Evict {
        /// The evicted page.
        page: PageId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    /// A fault interrupt was raised; the drain fires after the ISR latency.
    Draining,
    Handling,
    Migrating,
}

#[derive(Debug)]
struct BatchPlan {
    record: BatchRecord,
    pages: Vec<PageId>,
    remaining: usize,
}

/// The UVM runtime model. See the [module documentation](self).
#[derive(Debug)]
pub struct UvmRuntime {
    cfg: UvmConfig,
    policy: PolicyConfig,
    buffer: FaultBuffer,
    mem: MemoryManager,
    pipes: PciePipes,
    prefetcher: Option<TreePrefetcher>,
    lifetime: LifetimeTracker,
    state: State,
    current: Option<BatchPlan>,
    /// Pages of the open batch (dense epoch set, cleared per batch; only
    /// meaningful while `current` is `Some`).
    batch_pages: EpochPageSet,
    /// Planned arrival time per open-batch page (same epoch discipline).
    planned_arrival: EpochPageMap<Cycle>,
    /// Frames freed by in-flight evictions, keyed by availability time.
    pending_free: BinaryHeap<Reverse<(Cycle, FrameId)>>,
    /// Pages of the current batch being migrated, with assigned frames.
    inflight: PageMap<FrameId>,
    /// Upper bound on valid page indices (prefetch never crosses it).
    valid_pages: u64,
    /// Ideal-eviction victims awaiting their shootdown timestamp (emitted
    /// at the consuming migration's start, the latest consistent moment).
    ideal_evicts: Vec<(PageId, Cycle)>,
    batch_seq: u64,
    finished_batches: Vec<BatchRecord>,
    faults_on_pending: u64,
    preemptive_evictions: u64,
    proactive_evictions: u64,
    audit: AuditLevel,
    injector: Option<FaultInjector>,
    probes: SharedProbes,
}

impl UvmRuntime {
    /// Creates the runtime for an address space of `valid_pages` pages.
    pub fn new(cfg: &UvmConfig, policy: &PolicyConfig, valid_pages: u64) -> Self {
        let prefetcher = match policy.prefetch {
            PrefetchPolicy::None => None,
            PrefetchPolicy::Tree { threshold_percent } => {
                Some(TreePrefetcher::new(cfg.pages_per_region(), threshold_percent))
            }
        };
        Self {
            cfg: cfg.clone(),
            policy: *policy,
            buffer: FaultBuffer::new(cfg.fault_buffer_entries),
            mem: MemoryManager::new(
                cfg.gpu_mem_pages,
                policy.eviction_granularity,
                cfg.pages_per_region(),
            ),
            pipes: PciePipes::new(
                cfg.pcie_h2d_bytes_per_sec,
                cfg.pcie_d2h_bytes_per_sec,
                policy.compression,
            ),
            prefetcher,
            lifetime: LifetimeTracker::new(),
            state: State::Idle,
            current: None,
            batch_pages: EpochPageSet::new(),
            planned_arrival: EpochPageMap::new(),
            pending_free: BinaryHeap::new(),
            inflight: PageMap::new(),
            ideal_evicts: Vec::new(),
            valid_pages,
            batch_seq: 0,
            finished_batches: Vec::new(),
            faults_on_pending: 0,
            preemptive_evictions: 0,
            proactive_evictions: 0,
            audit: AuditLevel::Off,
            injector: None,
            probes: SharedProbes::disabled(),
        }
    }

    /// Sets the invariant-audit level. When enabled, the runtime re-checks
    /// its conservation laws after every delivered event and fails the run
    /// with [`SimError::InvariantViolated`] on the first breach.
    pub fn set_audit(&mut self, level: AuditLevel) {
        self.audit = level;
    }

    /// Arms deterministic fault injection (see [`InjectConfig`]).
    pub fn set_injector(&mut self, cfg: InjectConfig) {
        self.injector = Some(FaultInjector::new(cfg));
    }

    /// Installs the probe emission handle (shared with the engine). The
    /// default handle is inert; with it, every emission site below is a
    /// single predictable branch.
    pub fn set_probes(&mut self, probes: SharedProbes) {
        self.probes = probes;
    }

    /// What the injector has done so far (`None` when injection is off).
    pub fn injector_stats(&self) -> Option<InjectStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Records a page fault raised by the GPU MMU at time `now` (the
    /// top-half ISR path). May start a batch if the runtime is idle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the faulting page is already
    /// resident in the runtime's planned view — the engine should never
    /// raise a fault for a page it could have translated.
    pub fn record_fault(&mut self, page: PageId, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        if self.lifetime.on_fault(page) {
            // The refault just classified the page's eviction as premature.
            self.probes.emit_with(now, || ProbeEvent::PrematureEviction { page });
        }
        if self.current.is_some() && self.batch_pages.contains(page) {
            // Absorb the fault only while the open batch will still
            // deliver the page: before planning, or while its transfer
            // is in flight. A batch page that already arrived and was
            // then force-evicted (capacity below batch size) must be
            // treated as a fresh fault, or its waiters starve.
            let will_arrive = match self.state {
                State::Draining | State::Handling => true,
                _ => self.inflight.contains(page),
            };
            if will_arrive {
                self.faults_on_pending += 1;
                self.probes.emit_with(now, || ProbeEvent::FaultAbsorbed { page });
                return Ok(Vec::new());
            }
        }
        if self.mem.is_resident(page) {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("fault raised for planned-resident page {page}"),
            });
        }
        self.buffer.record(page, now);
        self.probes.emit_with(now, || ProbeEvent::FaultRaised { page });
        if self.injector.as_mut().is_some_and(|i| i.duplicate_fault()) {
            // Spurious duplicate fault delivery: coalesces in the buffer
            // (and shows up in the dedup counters), as on real hardware.
            self.buffer.record(page, now);
            self.probes.emit_with(now, || ProbeEvent::FaultRaised { page });
        }
        if self.state == State::Idle {
            self.state = State::Draining;
            Ok(vec![UvmOutput::Schedule {
                at: now + self.cfg.isr_latency,
                event: UvmEvent::DrainBuffer,
            }])
        } else {
            Ok(Vec::new())
        }
    }

    /// Refreshes a resident page's LRU position (called by the engine on
    /// L1 TLB misses — the aged-LRU approximation).
    pub fn touch(&mut self, page: PageId) {
        self.mem.touch(page);
    }

    /// Delivers a previously scheduled event back to the runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMachine`] when the event does not match the
    /// runtime's state (an engine bug), [`SimError::Accounting`] when the
    /// residency books contradict themselves, and
    /// [`SimError::InvariantViolated`] when auditing is enabled and a
    /// conservation law fails after the event applies.
    pub fn on_event(&mut self, event: UvmEvent, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        let outputs = match event {
            UvmEvent::DrainBuffer => {
                if self.state != State::Draining {
                    return Err(self.unexpected(now, "DrainBuffer", "drain outside the ISR window"));
                }
                self.state = State::Idle;
                self.start_batch(now)
            }
            UvmEvent::HandlingDone { batch } => self.plan_migrations(batch, now),
            UvmEvent::PageArrived { page } => self.page_arrived(page, now),
            UvmEvent::EvictionStarted { page } => Ok(vec![UvmOutput::Evict { page }]),
        }?;
        if self.audit.enabled() {
            self.check_invariants(now)?;
        }
        Ok(outputs)
    }

    /// Builds a [`SimError::StateMachine`] snapshotting the current state.
    fn unexpected(&self, now: Cycle, event: &str, detail: &str) -> SimError {
        SimError::StateMachine {
            cycle: now,
            event: event.to_string(),
            state: format!("{:?}", self.state),
            detail: detail.to_string(),
        }
    }

    fn start_batch(&mut self, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        debug_assert_eq!(self.state, State::Idle);
        let faulted: Vec<PageId> = self
            .buffer
            .drain_sorted()
            .into_iter()
            .filter(|p| !self.mem.is_resident(*p))
            .collect();
        if faulted.is_empty() {
            return Ok(Vec::new());
        }
        let mut outputs = Vec::new();
        let prefetched = match &mut self.prefetcher {
            Some(pf) => {
                let mem = &self.mem;
                pf.expand(&faulted, |p| mem.is_resident(p), self.valid_pages)
            }
            None => Vec::new(),
        };
        // Injected prefetch drops: the candidate silently never migrates,
        // so its eventual demand access must fault and recover.
        let prefetched: Vec<PageId> = match &mut self.injector {
            Some(inj) => prefetched.into_iter().filter(|_| !inj.drop_prefetch()).collect(),
            None => prefetched,
        };
        let num_faults = faulted.len();
        let mut pages = faulted;
        pages.extend(prefetched);
        pages.sort_unstable();
        pages.dedup();

        let handling = self.cfg.fault_handling_base
            + self.cfg.fault_handling_per_fault * num_faults as Cycle;
        let id = self.batch_seq;
        self.batch_seq += 1;
        let record = BatchRecord {
            id,
            start: now,
            handling_done: now + handling,
            first_migration_start: 0,
            end: 0,
            faults: num_faults as u32,
            prefetches: (pages.len() - num_faults) as u32,
            evictions: 0,
            forced_pinned_evictions: 0,
            migrated_bytes: 0,
        };
        self.batch_pages.clear();
        for &pg in &pages {
            self.batch_pages.insert(pg);
        }
        self.planned_arrival.clear();
        let mut plan = BatchPlan { record, remaining: pages.len(), pages };
        self.probes.emit_with(now, || ProbeEvent::BatchOpened {
            batch: id,
            faults: plan.record.faults,
            prefetches: plan.record.prefetches,
            handling_cycles: handling,
        });
        outputs.push(UvmOutput::Schedule { at: now + handling, event: UvmEvent::HandlingDone { batch: id } });

        // Unobtrusive Eviction: the top-half ISR checks the memory status
        // tracker and issues one preemptive eviction so the first migration
        // can start unhindered (§4.2, Fig. 9 steps 2-3).
        if self.policy.eviction == EvictionPolicy::Unobtrusive
            && self.mem.at_capacity()
            && self.pending_free.is_empty()
        {
            self.schedule_evictions(now, &mut plan, &mut outputs, EvictionCause::Preemptive)?;
            self.preemptive_evictions += 1;
        }

        // ETC-style Proactive Eviction: predict the batch's frame demand
        // and evict ahead of the allocations, overlapped with the handling
        // window. Mispredicted victims show up as premature evictions,
        // which is why ETC disables PE for irregular applications.
        if self.policy.proactive_eviction {
            let available =
                self.mem.available_without_eviction() + self.pending_free.len() as u64;
            let mut need = (plan.pages.len() as u64).saturating_sub(available);
            while need > 0 && self.mem.resident_count() > 0 {
                let before = self.pending_free.len();
                self.schedule_evictions(now, &mut plan, &mut outputs, EvictionCause::Proactive)?;
                let freed = (self.pending_free.len() - before) as u64;
                if freed == 0 {
                    break;
                }
                self.proactive_evictions += freed;
                need = need.saturating_sub(freed);
            }
        }

        self.current = Some(plan);
        self.state = State::Handling;
        Ok(outputs)
    }

    /// Schedules enough evictions to free at least one frame, pushing the
    /// freed frames into `pending_free` tagged with their availability
    /// times.
    /// A [`EvictionCause::Proactive`] cause forces UE-style device-to-host
    /// scheduling regardless of the base eviction policy.
    fn schedule_evictions(&mut self, earliest: Cycle, plan: &mut BatchPlan, outputs: &mut Vec<UvmOutput>, cause: EvictionCause) -> Result<(), SimError> {
        let pinned = &self.batch_pages;
        let (victims, forced) = self.mem.pick_victims(|p| pinned.contains(p));
        if victims.is_empty() {
            return Err(SimError::Accounting {
                cycle: earliest,
                detail: "eviction required but nothing is resident (capacity too small for one batch?)"
                    .to_string(),
            });
        }
        // Pinned pages (the open batch's own) must never be selected unless
        // the batch itself overflows capacity (`forced`). This now covers
        // root-chunk sweeps too: an unforced sweep excludes pinned
        // region-mates of its unpinned LRU seed (DESIGN.md §3).
        if self.audit.enabled() && !forced {
            if let Some(v) = victims.iter().find(|v| self.batch_pages.contains(**v)) {
                return Err(SimError::InvariantViolated {
                    cycle: earliest,
                    invariant: "pinned pages are never victims unless forced",
                    snapshot: format!(
                        "victim {v} is pinned by open batch {} ({} pages)",
                        plan.record.id,
                        self.batch_pages.len()
                    ),
                });
            }
        }
        let page_bytes = self.cfg.page_bytes();
        for victim in victims {
            // A same-batch victim only becomes evictable once it arrives —
            // one cycle later, so that waiters woken by the arrival observe
            // the page resident and make forward progress even when the
            // eviction is immediate.
            let avail = self
                .planned_arrival
                .get(victim)
                .map(|t| t + 1)
                .unwrap_or(0)
                .max(earliest);
            let frame = self.mem.remove(victim, earliest)?;
            let effective = if cause == EvictionCause::Proactive {
                EvictionPolicy::Unobtrusive
            } else {
                self.policy.eviction
            };
            let (start, ready) = match effective {
                EvictionPolicy::SerializedLru => {
                    // §3 / Fig. 4: eviction and migration serialize — the
                    // eviction transfer blocks the host-to-device pipe.
                    let tr = self.pipes.schedule_d2h(avail.max(self.pipes.h2d_free_at()), page_bytes);
                    self.pipes.stall_h2d_until(tr.end);
                    (tr.start, tr.end)
                }
                EvictionPolicy::Unobtrusive => {
                    // §4.2 / Fig. 10: pipelined on the D2H direction.
                    let tr = self.pipes.schedule_d2h(avail, page_bytes);
                    (tr.start, tr.end)
                }
                EvictionPolicy::Ideal => {
                    // Zero-cost eviction: the frame is usable immediately,
                    // and the page table entry survives until the frame's
                    // consumer actually starts transferring (the most
                    // favorable consistent schedule).
                    self.ideal_evicts.push((victim, avail));
                    self.pending_free.push(Reverse((avail, frame)));
                    self.probes.emit_with(earliest, || ProbeEvent::EvictionBegun {
                        page: victim,
                        cause,
                        forced_pinned: forced,
                        start: avail,
                    });
                    self.probes.emit_with(earliest, || ProbeEvent::EvictionFinished {
                        page: victim,
                        ready: avail,
                    });
                    plan.record.evictions += 1;
                    if forced {
                        plan.record.forced_pinned_evictions += 1;
                    }
                    continue;
                }
            };
            outputs.push(UvmOutput::Schedule { at: start, event: UvmEvent::EvictionStarted { page: victim } });
            self.lifetime.on_evict(victim, start);
            self.probes.emit_with(earliest, || ProbeEvent::EvictionBegun {
                page: victim,
                cause,
                forced_pinned: forced,
                start,
            });
            self.probes.emit_with(earliest, || ProbeEvent::EvictionFinished { page: victim, ready });
            self.pending_free.push(Reverse((ready, frame)));
            plan.record.evictions += 1;
            if forced {
                plan.record.forced_pinned_evictions += 1;
            }
        }
        Ok(())
    }

    fn acquire_frame(&mut self, now: Cycle, plan: &mut BatchPlan, outputs: &mut Vec<UvmOutput>) -> Result<(FrameId, Cycle), SimError> {
        if let Some(f) = self.mem.take_frame() {
            return Ok((f, now));
        }
        if let Some(&Reverse((ready, frame))) = self.pending_free.peek() {
            self.pending_free.pop();
            return Ok((frame, ready));
        }
        self.schedule_evictions(now, plan, outputs, EvictionCause::Demand)?;
        match self.pending_free.pop() {
            Some(Reverse((ready, frame))) => Ok((frame, ready)),
            None => Err(SimError::Accounting {
                cycle: now,
                detail: "eviction was scheduled but yielded no frame".to_string(),
            }),
        }
    }

    fn plan_migrations(&mut self, batch: u64, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        if self.state != State::Handling {
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                "migration planning outside the handling window",
            ));
        }
        let Some(mut plan) = self.current.take() else {
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                "no batch is open",
            ));
        };
        if plan.record.id != batch {
            let open = plan.record.id;
            self.current = Some(plan);
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                &format!("stale batch (open batch is {open})"),
            ));
        }
        let mut outputs = Vec::new();
        let page_bytes = self.cfg.page_bytes();
        for i in 0..plan.pages.len() {
            let page = plan.pages[i];
            let (frame, ready) = self.acquire_frame(now, &mut plan, &mut outputs)?;
            // Injected PCIe perturbation: jitter/stalls delay when this
            // transfer may claim the host-to-device pipe.
            let extra = self.injector.as_mut().map_or(0, FaultInjector::transfer_delay);
            let tr = self.pipes.schedule_h2d(now.max(ready) + extra, page_bytes);
            if i == 0 {
                plan.record.first_migration_start = tr.start;
            }
            self.probes.emit_with(now, || ProbeEvent::MigrationStarted {
                batch,
                page,
                start: tr.start,
                end: tr.end,
            });
            for (victim, avail) in self.ideal_evicts.drain(..) {
                let at = tr.start.max(avail);
                outputs.push(UvmOutput::Schedule { at, event: UvmEvent::EvictionStarted { page: victim } });
                self.lifetime.on_evict(victim, at);
            }
            plan.record.migrated_bytes += page_bytes;
            self.mem.mark_resident(page, frame, now)?;
            self.lifetime.on_install(page, tr.end);
            self.inflight.insert(page, frame);
            self.planned_arrival.insert(page, tr.end);
            // Injected lost DMA completion: the transfer occupies the pipe
            // but its PageArrived event never fires, stranding the batch.
            let lost = self.injector.as_mut().is_some_and(|i| i.drop_arrival());
            if !lost {
                outputs.push(UvmOutput::Schedule { at: tr.end, event: UvmEvent::PageArrived { page } });
            }
        }
        self.current = Some(plan);
        self.state = State::Migrating;
        Ok(outputs)
    }

    fn page_arrived(&mut self, page: PageId, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        if self.state != State::Migrating {
            return Err(self.unexpected(
                now,
                &format!("PageArrived(page:{page})"),
                "no batch is migrating",
            ));
        }
        let Some(frame) = self.inflight.remove(page) else {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("arrival of page {page} that is not in flight"),
            });
        };
        self.probes.emit_with(now, || ProbeEvent::MigrationCompleted { page, frame });
        let mut outputs = vec![UvmOutput::Install { page, frame }];
        let finished = {
            let Some(plan) = self.current.as_mut() else {
                return Err(self.unexpected(
                    now,
                    &format!("PageArrived(page:{page})"),
                    "no batch is open",
                ));
            };
            if plan.remaining == 0 {
                return Err(SimError::Accounting {
                    cycle: now,
                    detail: format!("arrival of page {page} after its batch completed"),
                });
            }
            plan.remaining -= 1;
            plan.remaining == 0
        };
        if finished {
            if let Some(mut plan) = self.current.take() {
                plan.record.end = now;
                let r = plan.record;
                self.probes.emit_with(now, || ProbeEvent::BatchClosed {
                    batch: r.id,
                    faults: r.faults,
                    prefetches: r.prefetches,
                    evictions: r.evictions,
                    forced_pinned_evictions: r.forced_pinned_evictions,
                    migrated_bytes: r.migrated_bytes,
                    opened_at: r.start,
                    first_migration_start: r.first_migration_start,
                });
                self.finished_batches.push(plan.record);
            }
            self.state = State::Idle;
            // Driver replay optimization (§2.2): service accumulated faults
            // immediately rather than waiting for a fresh interrupt.
            if !self.buffer.is_empty() {
                outputs.extend(self.start_batch(now)?);
            }
        }
        Ok(outputs)
    }

    /// Closes a lifetime sampling window (driven by the engine every
    /// [`ToConfig::lifetime_sample_period`](batmem_types::policy::ToConfig)).
    pub fn sample_lifetime(&mut self) -> LifetimeSample {
        self.lifetime.sample()
    }

    /// Whether a batch is currently open.
    pub fn busy(&self) -> bool {
        self.state != State::Idle
    }

    /// Whether `page` is currently migrating.
    pub fn is_inflight(&self, page: PageId) -> bool {
        self.inflight.contains(page)
    }

    /// Whether `page` is resident in the runtime's planned view (which may
    /// lead the GPU page table by up to one batch's scheduling).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.mem.is_resident(page)
    }

    /// Pages currently resident (planned view).
    pub fn resident_pages(&self) -> usize {
        self.mem.resident_count()
    }

    /// Preemptive evictions issued by the UE top-half path.
    pub fn preemptive_evictions(&self) -> u64 {
        self.preemptive_evictions
    }

    /// Outstanding page arrivals of the open batch (engine diagnostics).
    pub fn outstanding(&self) -> usize {
        self.current.as_ref().map_or(0, |p| p.remaining)
    }

    /// One-line state description for watchdog and deadlock dumps.
    pub fn describe_state(&self) -> String {
        format!(
            "uvm state={:?} open_batch={:?} remaining={} inflight={} resident={} pending_free={} buffered_faults={}",
            self.state,
            self.current.as_ref().map(|p| p.record.id),
            self.outstanding(),
            self.inflight.len(),
            self.mem.resident_count(),
            self.pending_free.len(),
            !self.buffer.is_empty(),
        )
    }

    /// Re-derives the runtime's invariants from scratch.
    ///
    /// Run automatically after every event when [`set_audit`](Self::set_audit)
    /// enables auditing; also callable directly by tests. `Basic` covers
    /// state/plan structural consistency; `Full` adds the O(resident)
    /// frame-conservation and LRU-index scans.
    pub fn check_invariants(&self, now: Cycle) -> Result<(), SimError> {
        let violated = |invariant: &'static str, snapshot: String| {
            Err(SimError::InvariantViolated { cycle: now, invariant, snapshot })
        };
        match self.state {
            State::Idle | State::Draining => {
                if self.current.is_some() || !self.inflight.is_empty() {
                    return violated("idle runtime has no open batch", self.describe_state());
                }
            }
            State::Handling => {
                let Some(plan) = &self.current else {
                    return violated("handling state has an open batch", self.describe_state());
                };
                if plan.remaining != plan.pages.len() || !self.inflight.is_empty() {
                    return violated(
                        "handling batch has not started migrating",
                        self.describe_state(),
                    );
                }
            }
            State::Migrating => {
                let Some(plan) = &self.current else {
                    return violated("migrating state has an open batch", self.describe_state());
                };
                if self.inflight.len() != plan.remaining || plan.remaining > plan.pages.len() {
                    return violated(
                        "in-flight pages equal outstanding arrivals",
                        self.describe_state(),
                    );
                }
            }
        }
        if let Some(plan) = &self.current {
            let planned = plan.record.faults as usize + plan.record.prefetches as usize;
            if planned != plan.pages.len() || self.batch_pages.len() != plan.pages.len() {
                return violated(
                    "batch page counts are conserved",
                    format!(
                        "faults+prefetches={planned} pages={} set={}",
                        plan.pages.len(),
                        self.batch_pages.len()
                    ),
                );
            }
            // Every in-flight page belongs to the open batch: batch pages
            // and in-flight pages are both duplicate-free, so counting the
            // batch pages that are in flight is an O(batch) subset check.
            let inflight_batch_pages =
                plan.pages.iter().filter(|p| self.inflight.contains(**p)).count();
            if inflight_batch_pages != self.inflight.len() {
                return violated(
                    "in-flight pages belong to the open batch",
                    self.describe_state(),
                );
            }
        }
        if self.audit >= AuditLevel::Full {
            self.mem.audit(now)?;
            // Frame conservation: every frame ever minted is exactly one of
            // free, resident, or awaiting an in-flight eviction's transfer.
            let minted = self.mem.minted_frames();
            let tracked = self.mem.free_frames() as u64
                + self.mem.resident_count() as u64
                + self.pending_free.len() as u64;
            if minted != tracked {
                return violated(
                    "frame conservation: minted == free + resident + pending",
                    format!("minted={minted} tracked={tracked} ({})", self.describe_state()),
                );
            }
        }
        Ok(())
    }

    /// Assembles end-of-run statistics.
    pub fn stats(&self) -> UvmStats {
        UvmStats {
            batches: self.finished_batches.clone(),
            faults_raised: self.buffer.raised(),
            faults_deduped: self.buffer.duplicates(),
            buffer_overflows: self.buffer.overflows(),
            faults_on_inflight: self.faults_on_pending,
            prefetches: self.prefetcher.as_ref().map_or(0, TreePrefetcher::issued),
            evictions: self.mem.evictions(),
            premature_evictions: self.lifetime.premature_evictions(),
            h2d_bytes: self.pipes.h2d_total_bytes(),
            d2h_bytes: self.pipes.d2h_total_bytes(),
            mean_page_lifetime: self.lifetime.mean_lifetime(),
            peak_resident_pages: self.mem.peak_resident() as u64,
            preemptive_evictions: self.preemptive_evictions,
            proactive_evictions: self.proactive_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cap: Option<u64>) -> UvmConfig {
        UvmConfig { gpu_mem_pages: cap, ..UvmConfig::default() }
    }

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    /// Per-page (page, cycle) event times, in occurrence order.
    type Timeline = Vec<(PageId, Cycle)>;

    /// Drives the runtime's own scheduled events to completion, returning
    /// (install times, evict times) per page and the final time.
    fn drain(rt: &mut UvmRuntime, initial: Vec<UvmOutput>) -> (Timeline, Timeline) {
        let mut queue: Vec<(Cycle, UvmEvent)> = Vec::new();
        let mut installs = Vec::new();
        let mut evicts = Vec::new();
        let apply = |outs: Vec<UvmOutput>, at: Cycle, queue: &mut Vec<(Cycle, UvmEvent)>, installs: &mut Timeline, evicts: &mut Timeline| {
            for o in outs {
                match o {
                    UvmOutput::Schedule { at, event } => queue.push((at, event)),
                    UvmOutput::Install { page, .. } => installs.push((page, at)),
                    UvmOutput::Evict { page } => evicts.push((page, at)),
                }
            }
        };
        apply(initial, 0, &mut queue, &mut installs, &mut evicts);
        while !queue.is_empty() {
            queue.sort_by_key(|&(t, _)| t);
            let (t, e) = queue.remove(0);
            let outs = rt.on_event(e, t).unwrap();
            apply(outs, t, &mut queue, &mut installs, &mut evicts);
        }
        (installs, evicts)
    }

    #[test]
    fn single_fault_single_batch() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() }, 1000);
        let outs = rt.record_fault(p(5), 100).unwrap();
        let (installs, _) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 1);
        let (page, at) = installs[0];
        assert_eq!(page, p(5));
        // ISR latency + 20 us handling (+30/fault) + one 64 KB transfer.
        assert_eq!(at, 100 + 1_000 + 20_000 + 30 + 4162);
        let s = rt.stats();
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.batches[0].faults, 1);
        assert_eq!(s.batches[0].fault_handling_time(), 20_030);
    }

    #[test]
    fn faults_during_batch_form_next_batch() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() }, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        assert_eq!(outs.len(), 1); // DrainBuffer scheduled
        let outs = rt.on_event(UvmEvent::DrainBuffer, 1_000).unwrap();
        // Fault raised while the first batch is handling: queues silently.
        assert!(rt.record_fault(p(2), 5_000).unwrap().is_empty());
        let (installs, _) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 2);
        let s = rt.stats();
        assert_eq!(s.num_batches(), 2);
        assert_eq!(s.batches[0].faults, 1);
        assert_eq!(s.batches[1].faults, 1);
        // Second batch starts exactly when the first ends (replay path).
        assert_eq!(s.batches[1].start, s.batches[0].end);
    }

    #[test]
    fn same_cycle_faults_join_via_isr_window() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() }, 1000);
        let mut outs = rt.record_fault(p(1), 0).unwrap();
        outs.extend(rt.record_fault(p(2), 400).unwrap()); // inside the 1 us ISR window
        let (installs, _) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 2);
        assert_eq!(rt.stats().num_batches(), 1);
    }

    #[test]
    fn batch_groups_simultaneous_faults() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() }, 1000);
        let mut outs = rt.record_fault(p(3), 0).unwrap();
        outs.extend(rt.record_fault(p(1), 0).unwrap());
        outs.extend(rt.record_fault(p(2), 0).unwrap());
        let (installs, _) = drain(&mut rt, outs);
        let s = rt.stats();
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.batches[0].faults, 3);
        // Pages migrate in ascending address order (preprocessing sort).
        let pages: Vec<PageId> = installs.iter().map(|&(p, _)| p).collect();
        assert_eq!(pages, vec![p(1), p(2), p(3)]);
    }

    #[test]
    fn prefetcher_fills_dense_regions() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig::baseline(), 64);
        // 16 of 32 pages of region 0 fault: 50% threshold fires.
        let mut outs = Vec::new();
        for i in 0..16 {
            outs.extend(rt.record_fault(p(i * 2), 0).unwrap());
        }
        let (installs, _) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 32);
        let s = rt.stats();
        assert_eq!(s.batches[0].faults, 16);
        assert_eq!(s.batches[0].prefetches, 16);
    }

    #[test]
    fn serialized_eviction_blocks_migration() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        let (installs, _) = drain(&mut rt, outs);
        let first_arrival = installs[0].1;
        // Now page 1 is resident and memory is full; fault page 2.
        let outs = rt.record_fault(p(2), first_arrival + 1).unwrap();
        let (installs, evicts) = drain(&mut rt, outs);
        assert_eq!(evicts.len(), 1);
        assert_eq!(evicts[0].0, p(1));
        let s = rt.stats();
        let b = &s.batches[1];
        // Migration could not start at handling_done: it waited for the
        // eviction transfer.
        assert!(b.first_migration_start > b.handling_done);
        assert_eq!(installs.last().unwrap().0, p(2));
    }

    #[test]
    fn unobtrusive_eviction_overlaps_handling() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::ue_only() };
        let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        let (installs, _) = drain(&mut rt, outs);
        let t = installs[0].1;
        let outs = rt.record_fault(p(2), t + 1).unwrap();
        let (_, evicts) = drain(&mut rt, outs);
        assert_eq!(rt.preemptive_evictions(), 1);
        // The eviction started right at batch start (top-half ISR), inside
        // the handling window.
        let s = rt.stats();
        let b = &s.batches[1];
        assert_eq!(evicts.last().unwrap().1, b.start);
        // And the first migration starts exactly at handling-done.
        assert_eq!(b.first_migration_start, b.handling_done);
    }

    #[test]
    fn ideal_eviction_is_free() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::ideal_eviction() };
        let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        drain(&mut rt, outs);
        let outs = rt.record_fault(p(2), 100_000).unwrap();
        drain(&mut rt, outs);
        let s = rt.stats();
        let b = &s.batches[1];
        assert_eq!(b.first_migration_start, b.handling_done);
        // No D2H traffic at all.
        assert_eq!(s.d2h_bytes, 0);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn premature_eviction_detected_on_refault() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        drain(&mut rt, outs);
        let outs = rt.record_fault(p(2), 100_000).unwrap(); // evicts p1
        drain(&mut rt, outs);
        let outs = rt.record_fault(p(1), 200_000).unwrap(); // refault: premature
        drain(&mut rt, outs);
        let s = rt.stats();
        assert_eq!(s.premature_evictions, 1);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn fault_on_inflight_page_is_absorbed() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(None), &policy, 1000);
        let outs = rt.record_fault(p(1), 0).unwrap();
        // A duplicate inside the ISR window coalesces in the buffer.
        assert!(rt.record_fault(p(1), 10).unwrap().is_empty());
        let outs = {
            assert_eq!(outs.len(), 1);
            rt.on_event(UvmEvent::DrainBuffer, 1_000).unwrap()
        };
        // A duplicate while the batch is open is absorbed by the open plan.
        assert!(rt.record_fault(p(1), 5_000).unwrap().is_empty());
        drain(&mut rt, outs);
        let s = rt.stats();
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.faults_deduped, 1);
        assert_eq!(s.faults_on_inflight, 1);
        assert_eq!(s.batches[0].faults, 1);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(Some(4)), &policy, 1000);
        for round in 0..5u64 {
            let mut outs = Vec::new();
            for i in 0..3 {
                outs.extend(rt.record_fault(p(round * 3 + i), round * 1_000_000).unwrap());
            }
            drain(&mut rt, outs);
            assert!(rt.resident_pages() <= 4, "round {round}: {}", rt.resident_pages());
        }
    }

    #[test]
    fn batch_larger_than_capacity_forces_pinned_evictions() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
        let mut outs = Vec::new();
        for i in 0..5 {
            outs.extend(rt.record_fault(p(i), 0).unwrap());
        }
        let (installs, evicts) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 5);
        assert_eq!(evicts.len(), 3);
        let s = rt.stats();
        assert!(s.batches[0].forced_pinned_evictions > 0);
        assert!(rt.resident_pages() <= 2);
    }

    #[test]
    fn unlimited_memory_never_evicts() {
        let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig::baseline(), 10_000);
        let mut outs = Vec::new();
        for i in 0..200 {
            outs.extend(rt.record_fault(p(i * 7), i).unwrap());
        }
        let (_, evicts) = drain(&mut rt, outs);
        assert!(evicts.is_empty());
        assert_eq!(rt.stats().evictions, 0);
    }

    #[test]
    fn handling_time_scales_with_batch_size() {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(None), &policy, 10_000);
        let mut outs = Vec::new();
        for i in 0..100 {
            outs.extend(rt.record_fault(p(i), 0).unwrap());
        }
        drain(&mut rt, outs);
        let s = rt.stats();
        assert_eq!(s.batches[0].handling_done - s.batches[0].start, 20_000 + 30 * 100);
    }

    #[test]
    fn refault_of_force_evicted_batch_page_is_not_absorbed() {
        // Capacity 2, batch of 5: later migrations force-evict earlier
        // pages of the same batch. A fault for such a page while the batch
        // is still open must be recorded for the next batch, not absorbed.
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
        let mut outs = Vec::new();
        for i in 0..5 {
            outs.extend(rt.record_fault(p(i), 0).unwrap());
        }
        // Drive until the batch finishes.
        let (installs, evicts) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 5);
        assert!(evicts.iter().any(|&(pg, _)| pg.index() < 5), "no same-batch eviction");
        // Re-fault an evicted page: a fresh batch must deliver it again.
        let victim = evicts[0].0;
        let outs = rt.record_fault(victim, 10_000_000).unwrap();
        assert!(!outs.is_empty(), "refault swallowed");
        let (installs, _) = drain(&mut rt, outs);
        assert_eq!(installs.len(), 1);
        assert_eq!(installs[0].0, victim);
    }

    #[test]
    fn proactive_eviction_frees_frames_ahead_of_demand() {
        let policy = PolicyConfig {
            prefetch: PrefetchPolicy::None,
            proactive_eviction: true,
            ..PolicyConfig::baseline()
        };
        let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
        // Fill memory.
        let mut outs = Vec::new();
        for i in 0..2 {
            outs.extend(rt.record_fault(p(i), 0).unwrap());
        }
        drain(&mut rt, outs);
        // A two-page batch: PE must evict two pages at batch start, so the
        // migrations are not serialized behind reactive evictions.
        let mut outs = Vec::new();
        for i in 2..4 {
            outs.extend(rt.record_fault(p(i), 1_000_000).unwrap());
        }
        let (_, evicts) = drain(&mut rt, outs);
        assert_eq!(evicts.len(), 2);
        let s = rt.stats();
        assert_eq!(s.proactive_evictions, 2);
        let b = &s.batches[1];
        // Evictions overlapped the handling window: first migration starts
        // right at handling-done despite full memory.
        assert_eq!(b.first_migration_start, b.handling_done);
    }

    #[test]
    fn per_page_time_amortizes_with_batch_size() {
        // Fig. 3's shape: bigger batches => lower per-page cost.
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let mut small = UvmRuntime::new(&cfg(None), &policy, 10_000);
        let outs = small.record_fault(p(0), 0).unwrap();
        drain(&mut small, outs);
        let mut large = UvmRuntime::new(&cfg(None), &policy, 10_000);
        let mut outs = Vec::new();
        for i in 0..64 {
            outs.extend(large.record_fault(p(i), 0).unwrap());
        }
        drain(&mut large, outs);
        let t_small = small.stats().batches[0].per_page_time().unwrap();
        let t_large = large.stats().batches[0].per_page_time().unwrap();
        assert!(t_large < t_small / 2.0, "{t_large} vs {t_small}");
    }
}
