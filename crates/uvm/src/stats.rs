//! Aggregated UVM runtime statistics.

use crate::batch::BatchRecord;
use batmem_types::Cycle;

/// End-of-run statistics of the UVM runtime, assembled by
/// [`crate::runtime::UvmRuntime::stats`].
#[derive(Debug, Clone, Default)]
pub struct UvmStats {
    /// Every processed batch, in order.
    pub batches: Vec<BatchRecord>,
    /// Total faults raised (including coalesced duplicates).
    pub faults_raised: u64,
    /// Faults coalesced into an existing buffer entry.
    pub faults_deduped: u64,
    /// Faults that overflowed the buffer into the replay set.
    pub buffer_overflows: u64,
    /// Faults raised for pages already migrating in the current batch.
    pub faults_on_inflight: u64,
    /// Prefetched pages migrated.
    pub prefetches: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Evictions whose page was later re-faulted (premature evictions).
    pub premature_evictions: u64,
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// Mean page lifetime (cycles) across evicted pages, if any.
    pub mean_page_lifetime: Option<f64>,
    /// Highest simultaneous resident-page count observed.
    pub peak_resident_pages: u64,
    /// Preemptive evictions issued by the UE top-half path.
    pub preemptive_evictions: u64,
    /// Evictions issued ahead of demand by ETC's proactive eviction.
    pub proactive_evictions: u64,
    /// Faults serviced by a non-CPU fault-servicing model (0 under the
    /// default `cpu` model).
    pub gpu_serviced_faults: u64,
    /// Handler-occupancy cycles charged by the fault-servicing model (0
    /// under the default `cpu` model).
    pub handler_occupancy_cycles: u64,
}

impl UvmStats {
    /// Number of batches processed.
    pub fn num_batches(&self) -> u64 {
        self.batches.len() as u64
    }

    /// Mean batch size in pages (0 when no batch ran).
    pub fn avg_batch_pages(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        let total: u64 = self.batches.iter().map(|b| u64::from(b.pages())).sum();
        total as f64 / self.batches.len() as f64
    }

    /// Mean batch size in bytes.
    pub fn avg_batch_bytes(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        let total: u64 = self.batches.iter().map(|b| b.migrated_bytes).sum();
        total as f64 / self.batches.len() as f64
    }

    /// Mean batch processing time in cycles.
    pub fn avg_processing_time(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        let total: u128 = self.batches.iter().map(|b| u128::from(b.processing_time())).sum();
        total as f64 / self.batches.len() as f64
    }

    /// Mean GPU runtime fault handling time in cycles.
    pub fn avg_fault_handling_time(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        let total: u128 = self.batches.iter().map(|b| u128::from(b.fault_handling_time())).sum();
        total as f64 / self.batches.len() as f64
    }

    /// Premature-eviction rate in [0, 1].
    pub fn premature_rate(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.premature_evictions as f64 / self.evictions as f64
        }
    }

    /// Histogram of batch sizes in bytes: `(bucket upper bound, count)`
    /// with fixed-width buckets of `bucket_bytes` (the Fig. 16
    /// distribution).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_bytes` is zero.
    pub fn batch_size_histogram(&self, bucket_bytes: u64) -> Vec<(u64, u64)> {
        assert!(bucket_bytes > 0, "bucket size must be positive");
        let mut counts: Vec<u64> = Vec::new();
        for b in &self.batches {
            let bucket = (b.migrated_bytes / bucket_bytes) as usize;
            if counts.len() <= bucket {
                counts.resize(bucket + 1, 0);
            }
            counts[bucket] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((i as u64 + 1) * bucket_bytes, c))
            .collect()
    }

    /// Sum of all batch processing time (cycles the runtime spent with a
    /// batch open).
    pub fn total_batch_time(&self) -> Cycle {
        self.batches.iter().map(|b| b.processing_time()).sum()
    }

    /// Checks the structural invariants every run must satisfy: batches
    /// are well-ordered and non-overlapping, byte accounting balances, and
    /// residency never exceeded `capacity`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, capacity: Option<u64>, page_bytes: u64) -> Result<(), String> {
        let mut prev_end = 0;
        for b in &self.batches {
            if b.start < prev_end {
                return Err(format!("batch {} overlaps its predecessor", b.id));
            }
            if b.handling_done < b.start {
                return Err(format!("batch {}: handling precedes start", b.id));
            }
            if b.first_migration_start < b.handling_done {
                return Err(format!("batch {}: migration inside handling window", b.id));
            }
            if b.end < b.first_migration_start {
                return Err(format!("batch {}: ends before migrating", b.id));
            }
            if b.faults == 0 {
                return Err(format!("batch {} serviced no faults", b.id));
            }
            if b.migrated_bytes != u64::from(b.pages()) * page_bytes {
                return Err(format!("batch {}: byte accounting mismatch", b.id));
            }
            prev_end = b.end;
        }
        let pages: u64 = self.batches.iter().map(|b| u64::from(b.pages())).sum();
        if self.h2d_bytes != pages * page_bytes {
            return Err("H2D bytes disagree with pages migrated".into());
        }
        let evictions: u64 = self.batches.iter().map(|b| u64::from(b.evictions)).sum();
        if self.evictions != evictions {
            return Err("eviction totals disagree with batch records".into());
        }
        if self.premature_evictions > self.evictions {
            return Err("more premature evictions than evictions".into());
        }
        if let Some(cap) = capacity {
            if self.peak_resident_pages > cap {
                return Err(format!(
                    "peak residency {} exceeds capacity {cap}",
                    self.peak_resident_pages
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, pages: u32, start: Cycle, end: Cycle) -> BatchRecord {
        BatchRecord {
            id,
            start,
            handling_done: start + 20_000,
            first_migration_start: start + 20_000,
            end,
            faults: pages,
            prefetches: 0,
            evictions: 0,
            forced_pinned_evictions: 0,
            migrated_bytes: u64::from(pages) * 65_536,
        }
    }

    #[test]
    fn averages() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 100_000), rec(1, 30, 200_000, 260_000)],
            ..UvmStats::default()
        };
        assert_eq!(s.num_batches(), 2);
        assert_eq!(s.avg_batch_pages(), 20.0);
        assert_eq!(s.avg_processing_time(), 80_000.0);
        assert_eq!(s.avg_fault_handling_time(), 20_000.0);
        assert_eq!(s.total_batch_time(), 160_000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = UvmStats::default();
        assert_eq!(s.avg_batch_pages(), 0.0);
        assert_eq!(s.avg_processing_time(), 0.0);
        assert_eq!(s.premature_rate(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 1), rec(1, 30, 0, 1), rec(2, 33, 0, 1)],
            ..UvmStats::default()
        };
        // Bucket width 1 MB: 10 pages = 640 KB -> bucket 0; 30/33 pages
        // ≈ 1.9/2.1 MB -> buckets 1 and 2.
        let h = s.batch_size_histogram(1024 * 1024);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], (1024 * 1024, 1));
        assert_eq!(h[1].1, 1);
        assert_eq!(h[2].1, 1);
    }

    #[test]
    fn premature_rate() {
        let s = UvmStats { evictions: 10, premature_evictions: 3, ..UvmStats::default() };
        assert!((s.premature_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_well_formed_stats() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 100_000), rec(1, 5, 100_000, 160_000)],
            h2d_bytes: 15 * 65_536,
            ..UvmStats::default()
        };
        s.validate(Some(100), 65_536).unwrap();
    }

    #[test]
    fn validate_rejects_overlapping_batches() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 100_000), rec(1, 5, 90_000, 160_000)],
            h2d_bytes: 15 * 65_536,
            ..UvmStats::default()
        };
        assert!(s.validate(None, 65_536).unwrap_err().contains("overlaps"));
    }

    #[test]
    fn validate_rejects_capacity_violation() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 100_000)],
            h2d_bytes: 10 * 65_536,
            peak_resident_pages: 50,
            ..UvmStats::default()
        };
        assert!(s.validate(Some(40), 65_536).unwrap_err().contains("capacity"));
        s.validate(Some(50), 65_536).unwrap();
    }

    #[test]
    fn validate_rejects_byte_mismatch() {
        let s = UvmStats {
            batches: vec![rec(0, 10, 0, 100_000)],
            h2d_bytes: 9 * 65_536,
            ..UvmStats::default()
        };
        assert!(s.validate(None, 65_536).is_err());
    }
}
