//! Coalescing policy: when base pages of a large-page group are merged
//! into one large mapping, and when a splintered group may re-coalesce.
//!
//! Mosaic-style (ASPLOS'18) transparent multi-page-size management: a
//! fully-resident large-page group can be *promoted* to a single large
//! mapping — collapsing its TLB reach to one entry and shortening walks —
//! and must be *splintered* back to base pages before any of its pages is
//! evicted. The strategy decides two things:
//!
//! * **completion** — whether a batch that lands pages in a mostly-covered
//!   group should pull in the group's missing pages so it can promote
//!   (the greedy policy's density threshold, mirroring the tree
//!   prefetcher's);
//! * **promotion** — whether a group that became fully resident should be
//!   promoted at all, and in particular whether a group that was already
//!   splintered once may re-promote (the `splinter:on-evict` policy is
//!   sticky: a thrashing group stays at base granularity).
//!
//! The pipeline enforces the hard invariant itself: promotion is only ever
//! emitted for a fully-installed group, and a splinter is emitted before
//! any eviction under a promoted mapping.

/// Coalescing decisions for the migration and eviction stages.
pub trait CoalesceStrategy: std::fmt::Debug + Send {
    /// Registry name this strategy was built under (diagnostics).
    fn name(&self) -> &'static str;

    /// `true` for the no-op policy: the pipeline skips every piece of
    /// coalescing bookkeeping, keeping the off path byte-identical to a
    /// build that predates coalescing.
    fn is_off(&self) -> bool {
        false
    }

    /// Whether a batch covering `covered` of a group's `total` base pages
    /// (batch pages plus pages already installed) should expand to migrate
    /// the group's missing pages.
    fn wants_completion(&self, covered: u64, total: u64) -> bool;

    /// Whether a group that just became fully installed should be promoted.
    /// `ever_splintered` reports whether the group was promoted and then
    /// splintered earlier in the run.
    fn should_promote(&self, ever_splintered: bool) -> bool;
}

/// No coalescing: every mapping stays at base-page granularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoalesceOff;

impl CoalesceStrategy for CoalesceOff {
    fn name(&self) -> &'static str {
        "off"
    }

    fn is_off(&self) -> bool {
        true
    }

    fn wants_completion(&self, _covered: u64, _total: u64) -> bool {
        false
    }

    fn should_promote(&self, _ever_splintered: bool) -> bool {
        false
    }
}

/// Greedy coalescing: complete any group at least `threshold_pct` covered,
/// promote every group the moment it is fully installed, and re-promote
/// freely after splinters.
#[derive(Debug, Clone, Copy)]
pub struct GreedyCoalesce {
    threshold_pct: u8,
}

impl GreedyCoalesce {
    /// Creates the policy with a completion density threshold in 1..=100.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_pct` is outside 1..=100 (the registry rejects
    /// such specs before construction).
    pub fn new(threshold_pct: u8) -> Self {
        assert!(
            (1..=100).contains(&threshold_pct),
            "coalesce threshold must be in 1..=100, got {threshold_pct}"
        );
        Self { threshold_pct }
    }

    /// The configured completion threshold.
    pub fn threshold_pct(&self) -> u8 {
        self.threshold_pct
    }
}

impl CoalesceStrategy for GreedyCoalesce {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn wants_completion(&self, covered: u64, total: u64) -> bool {
        covered < total && covered * 100 >= total * u64::from(self.threshold_pct)
    }

    fn should_promote(&self, _ever_splintered: bool) -> bool {
        true
    }
}

/// Opportunistic coalescing with sticky splintering: promote only groups
/// that become fully resident on their own (no completion traffic), and
/// never re-promote a group that eviction pressure has already splintered —
/// the anti-thrashing variant.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplinterOnEvict;

impl CoalesceStrategy for SplinterOnEvict {
    fn name(&self) -> &'static str {
        "splinter"
    }

    fn wants_completion(&self, _covered: u64, _total: u64) -> bool {
        false
    }

    fn should_promote(&self, ever_splintered: bool) -> bool {
        !ever_splintered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_declines_everything() {
        let s = CoalesceOff;
        assert!(s.is_off());
        assert!(!s.wants_completion(31, 32));
        assert!(!s.should_promote(false));
    }

    #[test]
    fn greedy_threshold_gates_completion() {
        let s = GreedyCoalesce::new(75);
        assert!(!s.wants_completion(23, 32)); // 71% < 75%
        assert!(s.wants_completion(24, 32)); // 75%
        assert!(!s.wants_completion(32, 32), "a full group needs no completion");
        assert!(s.should_promote(true), "greedy re-promotes after splinters");
        assert!(!s.is_off());
    }

    #[test]
    fn greedy_100_is_promotion_only() {
        let s = GreedyCoalesce::new(100);
        assert!(!s.wants_completion(31, 32));
        assert!(s.should_promote(false));
    }

    #[test]
    #[should_panic(expected = "must be in 1..=100")]
    fn greedy_rejects_zero_threshold() {
        let _ = GreedyCoalesce::new(0);
    }

    #[test]
    fn splinter_on_evict_is_sticky() {
        let s = SplinterOnEvict;
        assert!(!s.wants_completion(31, 32));
        assert!(s.should_promote(false));
        assert!(!s.should_promote(true), "a splintered group never re-promotes");
    }
}
