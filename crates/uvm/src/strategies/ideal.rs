//! Ideal (zero-latency) eviction — the limit study of Fig. 8.

use super::{EvictionStrategy, EvictionTiming};
use crate::pcie::PciePipes;
use batmem_types::Cycle;

/// Zero-cost eviction: the frame is usable immediately and no
/// device-to-host transfer is scheduled. The pipeline keeps the victim's
/// page-table entry alive until the frame's consumer actually starts
/// transferring — the most favorable consistent schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealEviction;

impl EvictionStrategy for IdealEviction {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn schedule(&mut self, _pipes: &mut PciePipes, _avail: Cycle, _page_bytes: u64) -> EvictionTiming {
        EvictionTiming::Instant
    }
}
