//! Pluggable strategy traits for the staged fault pipeline, and the
//! built-in implementations.
//!
//! Each decision point of the pipeline (see [`crate::pipeline`]) is a
//! trait object owned by the runtime:
//!
//! * [`EvictionStrategy`] — victim selection and device-to-host transfer
//!   scheduling ([`serialized_lru`], [`unobtrusive`], [`ideal`], and the
//!   registry-only [`random_victim`] plugin);
//! * [`Prefetcher`] — batch-time page expansion ([`tree`], [`no_prefetch`]);
//! * [`CoalesceStrategy`] — multi-page-size promotion/splinter decisions
//!   ([`coalesce`]);
//! * [`OversubscriptionHandler`] — thread-oversubscription degree control
//!   (implemented by [`crate::oversub::OversubController`] and the
//!   closed-loop [`crate::adaptive::AdaptiveController`]);
//! * [`FaultServicingModel`] — fault-servicing cost model ([`servicing`]).
//!
//! Strategies are constructed by name through
//! [`PolicyRegistry`](crate::registry::PolicyRegistry); the pipeline core
//! never matches on policy enums, so a new strategy is a new module plus a
//! registry entry — zero diff inside the pipeline.

pub mod coalesce;
pub mod ideal;
pub mod no_prefetch;
pub mod random_victim;
pub mod serialized_lru;
pub mod servicing;
pub mod tree;
pub mod unobtrusive;

pub use coalesce::{CoalesceOff, CoalesceStrategy, GreedyCoalesce, SplinterOnEvict};
pub use servicing::{CpuServicing, FaultServicingModel, GpuDrivenServicing, ServicingCounters};
pub use ideal::IdealEviction;
pub use no_prefetch::NoPrefetch;
pub use random_victim::RandomVictim;
pub use serialized_lru::SerializedLruEviction;
pub use unobtrusive::UnobtrusiveEviction;

use crate::lifetime::LifetimeSample;
use crate::memmgr::MemoryManager;
use crate::pcie::PciePipes;
use batmem_types::{Cycle, PageId};

/// When an evicted frame becomes reusable, as decided by an
/// [`EvictionStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionTiming {
    /// A device-to-host transfer was scheduled: the victim's page-table
    /// entry dies at `start` (TLB shootdown) and the frame is free at
    /// `ready`.
    Transfer {
        /// When the eviction transfer claims the device-to-host pipe.
        start: Cycle,
        /// When the freed frame becomes available.
        ready: Cycle,
    },
    /// The frame frees instantly with no transfer (the ideal limit study);
    /// the pipeline defers the shootdown to the consuming migration's
    /// start, the most favorable consistent schedule.
    Instant,
}

/// Victim selection + eviction transfer scheduling (the pipeline's
/// residency/eviction stage).
pub trait EvictionStrategy: std::fmt::Debug + Send {
    /// Registry name this strategy was built under (diagnostics).
    fn name(&self) -> &'static str;

    /// Picks the victim set for one eviction round. `pinned` marks pages
    /// of the open batch, which must not be selected unless the batch
    /// itself overflows capacity — in that case return `forced = true`.
    ///
    /// The default is the memory manager's LRU policy (head of the aged-LRU
    /// list, widened to the root chunk under that granularity).
    fn pick_victims(
        &mut self,
        mem: &MemoryManager,
        pinned: &dyn Fn(PageId) -> bool,
    ) -> (Vec<PageId>, bool) {
        mem.pick_victims(pinned)
    }

    /// Schedules one victim's eviction on the PCIe pipes. `avail` is the
    /// earliest cycle the victim's data may leave (it may still be
    /// arriving), `page_bytes` the transfer size.
    fn schedule(&mut self, pipes: &mut PciePipes, avail: Cycle, page_bytes: u64) -> EvictionTiming;

    /// Whether the top-half ISR should issue one preemptive eviction at
    /// batch start when memory is at capacity (§4.2 of the paper).
    fn preemptive(&self) -> bool {
        false
    }
}

/// Batch-time page expansion (the pipeline's prefetch-expansion stage).
pub trait Prefetcher: std::fmt::Debug + Send {
    /// Registry name this strategy was built under (diagnostics).
    fn name(&self) -> &'static str;

    /// Expands a batch's faulted pages with prefetch candidates. `covered`
    /// reports pages already resident (they count toward density but must
    /// not be re-issued); `valid_pages` bounds the address space.
    fn expand(
        &mut self,
        faulted: &[PageId],
        covered: &dyn Fn(PageId) -> bool,
        valid_pages: u64,
    ) -> Vec<PageId>;

    /// Total prefetches issued so far.
    fn issued(&self) -> u64;
}

/// Thread-oversubscription degree control (the block scheduler's handoff
/// point; consulted by the engine, not the UVM pipeline itself).
pub trait OversubscriptionHandler: std::fmt::Debug + Send {
    /// Registry name this handler was built under (diagnostics).
    fn name(&self) -> &'static str;

    /// The allowed number of extra (inactive) blocks per SM right now.
    fn degree(&self) -> u32;

    /// Whether context switch-ins are currently allowed at all.
    fn switching_allowed(&self) -> bool;

    /// Feeds one page-lifetime sample to the dynamic controller.
    fn on_sample(&mut self, sample: LifetimeSample);

    /// Times the handler lowered the degree (reported in run metrics).
    fn decrements(&self) -> u64;
}
