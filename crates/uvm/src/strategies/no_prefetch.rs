//! The null prefetcher: only faulted pages migrate.

use super::Prefetcher;
use batmem_types::PageId;

/// Disables prefetching — every batch contains exactly its faulted pages.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn name(&self) -> &'static str {
        "none"
    }

    fn expand(
        &mut self,
        _faulted: &[PageId],
        _covered: &dyn Fn(PageId) -> bool,
        _valid_pages: u64,
    ) -> Vec<PageId> {
        Vec::new()
    }

    fn issued(&self) -> u64 {
        0
    }
}
