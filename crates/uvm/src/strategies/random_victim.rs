//! Random-victim eviction — a registry-only plugin strategy.
//!
//! This module exists to prove the pipeline's extension point: it is not
//! part of the paper's evaluation, is reachable only through the
//! [`PolicyRegistry`](crate::registry::PolicyRegistry) (`random[:seed]`),
//! and required zero changes inside the pipeline core when it was added.

use super::{EvictionStrategy, EvictionTiming};
use crate::memmgr::MemoryManager;
use crate::pcie::PciePipes;
use batmem_types::{Cycle, DetRng, PageId};

/// Evicts a uniformly random resident page instead of the LRU head, with
/// the baseline's serialized transfer timing — isolating the cost of
/// victim *selection* from the cost of eviction *scheduling*.
///
/// Always evicts one page at a time, even under root-chunk granularity:
/// a random seed has no locality for a region sweep to exploit.
#[derive(Debug, Clone)]
pub struct RandomVictim {
    rng: DetRng,
}

impl RandomVictim {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: DetRng::new(seed) }
    }
}

impl EvictionStrategy for RandomVictim {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick_victims(
        &mut self,
        mem: &MemoryManager,
        pinned: &dyn Fn(PageId) -> bool,
    ) -> (Vec<PageId>, bool) {
        let candidates: Vec<PageId> =
            mem.pages_in_lru_order().filter(|&p| !pinned(p)).collect();
        if candidates.is_empty() {
            // Everything resident is pinned by the open batch: fall back to
            // the LRU policy's forced-pinned handling.
            return mem.pick_victims(pinned);
        }
        let idx = self.rng.below(candidates.len() as u64) as usize;
        (vec![candidates[idx]], false)
    }

    fn schedule(&mut self, pipes: &mut PciePipes, avail: Cycle, page_bytes: u64) -> EvictionTiming {
        let tr = pipes.schedule_d2h(avail.max(pipes.h2d_free_at()), page_bytes);
        pipes.stall_h2d_until(tr.end);
        EvictionTiming::Transfer { start: tr.start, ready: tr.end }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_types::policy::EvictionGranularity;

    fn filled(n: u64) -> MemoryManager {
        let mut m = MemoryManager::new(Some(n), EvictionGranularity::Page, 32);
        for i in 0..n {
            let f = m.take_frame().unwrap();
            m.mark_resident(PageId::new(i), f, i).unwrap();
        }
        m
    }

    #[test]
    fn picks_only_unpinned_residents() {
        let mem = filled(8);
        let mut s = RandomVictim::new(7);
        for _ in 0..64 {
            let (v, forced) = s.pick_victims(&mem, &|p| p.index() % 2 == 0);
            assert_eq!(v.len(), 1);
            assert!(!forced);
            assert_eq!(v[0].index() % 2, 1, "pinned page {} selected", v[0]);
        }
    }

    #[test]
    fn all_pinned_falls_back_to_forced_lru() {
        let mem = filled(4);
        let mut s = RandomVictim::new(7);
        let (v, forced) = s.pick_victims(&mem, &|_| true);
        assert!(forced);
        assert_eq!(v, mem.pick_victims(|_| true).0);
    }

    #[test]
    fn same_seed_same_choices() {
        let mem = filled(64);
        let picks = |seed: u64| -> Vec<PageId> {
            let mut s = RandomVictim::new(seed);
            (0..16).map(|_| s.pick_victims(&mem, &|_| false).0[0]).collect()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(picks(42), picks(43));
    }

    #[test]
    fn schedule_serializes_behind_h2d() {
        let mut pipes = PciePipes::new(1_000_000_000, 1_000_000_000, Default::default());
        let _ = pipes.schedule_h2d(0, 65_536);
        let busy_until = pipes.h2d_free_at();
        let mut s = RandomVictim::new(1);
        match s.schedule(&mut pipes, 0, 65_536) {
            EvictionTiming::Transfer { start, ready } => {
                assert_eq!(start, busy_until);
                assert!(ready > start);
                assert_eq!(pipes.h2d_free_at(), ready);
            }
            EvictionTiming::Instant => panic!("random victim schedules a real transfer"),
        }
    }
}
