//! The baseline eviction engine: reactive, serialized behind migrations.

use super::{EvictionStrategy, EvictionTiming};
use crate::pcie::PciePipes;
use batmem_types::Cycle;

/// The NVIDIA-driver baseline (§3 of the paper): an eviction is requested
/// reactively when an allocation fails, and the incoming page's transfer is
/// **serialized** behind the eviction — the device-to-host transfer blocks
/// the host-to-device pipe (Fig. 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerializedLruEviction;

impl EvictionStrategy for SerializedLruEviction {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn schedule(&mut self, pipes: &mut PciePipes, avail: Cycle, page_bytes: u64) -> EvictionTiming {
        // §3 / Fig. 4: eviction and migration serialize — the eviction
        // transfer blocks the host-to-device pipe.
        let tr = pipes.schedule_d2h(avail.max(pipes.h2d_free_at()), page_bytes);
        pipes.stall_h2d_until(tr.end);
        EvictionTiming::Transfer { start: tr.start, ready: tr.end }
    }
}
