//! The fault-servicing cost model: who runs the far-fault handler.
//!
//! The seed simulator charges every fault batch the classic UVM driver
//! cost: a fixed interrupt-service round-trip to the CPU before the fault
//! buffer drains, then a batched handling window
//! (`fault_handling_base + fault_handling_per_fault × faults`) of CPU
//! driver preprocessing. GPUVM-style designs (PAPERS.md, arXiv 2411.05309)
//! instead service faults from a handler running *on the GPU*: the CPU
//! round-trip disappears, and cost shifts to per-fault handler occupancy —
//! SM cycles the handler steals from the workload.
//!
//! [`FaultServicingModel`] is the decision point; the capture stage asks it
//! for the ISR latency and the formation stage for the batch handling
//! window. [`CpuServicing`] reproduces the seed arithmetic verbatim (the
//! pinned default); [`GpuDrivenServicing`] removes the round-trip and
//! charges occupancy per fault, which changes batch-formation economics:
//! shorter windows close batches sooner, so batches are smaller and more
//! frequent.

use batmem_types::Cycle;

/// ISR latency of the GPU-driven handler: a fault reaches an on-GPU
/// handler through the fault buffer without leaving the device, orders of
/// magnitude below the CPU round-trip (1000 cycles in the seed config).
pub const GPU_DRIVEN_ISR_LATENCY: Cycle = 100;

/// Default per-fault handler-occupancy charge of [`GpuDrivenServicing`].
pub const GPU_DRIVEN_DEFAULT_OCCUPANCY: Cycle = 1_000;

/// Counters a servicing model accumulates over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServicingCounters {
    /// Fault batches the model priced.
    pub batches: u64,
    /// Faults across those batches.
    pub faults: u64,
    /// Cumulative handler-occupancy cycles charged.
    pub occupancy_cycles: u64,
}

/// Prices the fault-servicing path (the pipeline's capture + formation
/// stages ask it for the ISR latency and the batch handling window).
pub trait FaultServicingModel: std::fmt::Debug + Send {
    /// Registry name this model was built under (diagnostics).
    fn name(&self) -> &'static str;

    /// Whether this is the classic CPU model whose arithmetic is pinned
    /// byte-identical to the seed. Gates the end-of-run
    /// `FaultServicingSummary` probe event: the default path must not emit
    /// events the seed did not.
    fn is_cpu(&self) -> bool {
        false
    }

    /// Latency between the first fault of an idle buffer and the drain, in
    /// cycles. `configured` is the run's `UvmConfig::isr_latency`.
    fn isr_latency(&mut self, configured: Cycle) -> Cycle;

    /// Length of the handling window a batch of `num_faults` distinct
    /// faults pays before migrations schedule. `base` and `per_fault` are
    /// the run's configured CPU-driver costs.
    fn handling_window(&mut self, base: Cycle, per_fault: Cycle, num_faults: u64) -> Cycle;

    /// Counters accumulated so far (all zero for models that charge the
    /// configured costs verbatim).
    fn counters(&self) -> ServicingCounters {
        ServicingCounters::default()
    }
}

/// The classic host-serviced model: faults interrupt the CPU, the driver
/// preprocesses the batch. Returns the configured costs verbatim — this is
/// the seed simulator, bit for bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuServicing;

impl FaultServicingModel for CpuServicing {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn is_cpu(&self) -> bool {
        true
    }

    fn isr_latency(&mut self, configured: Cycle) -> Cycle {
        configured
    }

    fn handling_window(&mut self, base: Cycle, per_fault: Cycle, num_faults: u64) -> Cycle {
        base + per_fault * num_faults
    }
}

/// GPU-driven servicing: no CPU round-trip, no batched driver
/// preprocessing base cost; instead every fault occupies the on-GPU
/// handler for `occupancy_per_fault` cycles.
#[derive(Debug, Clone, Copy)]
pub struct GpuDrivenServicing {
    occupancy_per_fault: Cycle,
    counters: ServicingCounters,
}

impl GpuDrivenServicing {
    /// A model charging `occupancy_per_fault` handler cycles per fault.
    pub fn new(occupancy_per_fault: Cycle) -> Self {
        Self { occupancy_per_fault, counters: ServicingCounters::default() }
    }
}

impl FaultServicingModel for GpuDrivenServicing {
    fn name(&self) -> &'static str {
        "gpu-driven"
    }

    fn isr_latency(&mut self, _configured: Cycle) -> Cycle {
        GPU_DRIVEN_ISR_LATENCY
    }

    fn handling_window(&mut self, _base: Cycle, _per_fault: Cycle, num_faults: u64) -> Cycle {
        let window = self.occupancy_per_fault * num_faults;
        self.counters.batches += 1;
        self.counters.faults += num_faults;
        self.counters.occupancy_cycles += window;
        window
    }

    fn counters(&self) -> ServicingCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_model_is_the_seed_arithmetic() {
        let mut m = CpuServicing;
        assert!(m.is_cpu());
        assert_eq!(m.isr_latency(1_000), 1_000);
        assert_eq!(m.handling_window(20_000, 30, 7), 20_000 + 30 * 7);
        assert_eq!(m.counters(), ServicingCounters::default());
    }

    #[test]
    fn gpu_driven_drops_the_round_trip_and_charges_occupancy() {
        let mut m = GpuDrivenServicing::new(500);
        assert!(!m.is_cpu());
        assert_eq!(m.isr_latency(1_000), GPU_DRIVEN_ISR_LATENCY);
        assert_eq!(m.handling_window(20_000, 30, 4), 2_000);
        assert_eq!(m.handling_window(20_000, 30, 1), 500);
        let c = m.counters();
        assert_eq!(c.batches, 2);
        assert_eq!(c.faults, 5);
        assert_eq!(c.occupancy_cycles, 2_500);
    }
}
