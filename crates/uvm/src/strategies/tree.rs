//! [`Prefetcher`] adapter for the tree-based prefetcher mechanism.
//!
//! The density machinery itself lives in [`crate::prefetch`]; this module
//! only binds it to the pipeline's strategy trait.

use super::Prefetcher;
use crate::prefetch::TreePrefetcher;
use batmem_types::PageId;

impl Prefetcher for TreePrefetcher {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn expand(
        &mut self,
        faulted: &[PageId],
        covered: &dyn Fn(PageId) -> bool,
        valid_pages: u64,
    ) -> Vec<PageId> {
        // Fully qualified: the inherent generic `expand` would otherwise
        // shadow this trait method and recurse.
        TreePrefetcher::expand(self, faulted, covered, valid_pages)
    }

    fn issued(&self) -> u64 {
        TreePrefetcher::issued(self)
    }
}
