//! Unobtrusive Eviction (§4.2) — the paper's proposed eviction engine.

use super::{EvictionStrategy, EvictionTiming};
use crate::pcie::PciePipes;
use batmem_types::Cycle;

/// Schedules an eviction pipelined on the device-to-host direction,
/// concurrent with host-to-device migrations (§4.2 / Fig. 10).
///
/// A free function because the pipeline also uses this timing for
/// [`EvictionCause::Proactive`](batmem_types::probe::EvictionCause)
/// evictions regardless of the configured eviction strategy: proactive
/// eviction exists precisely to overlap the handling window, so
/// serializing it would contradict its definition.
pub fn pipelined(pipes: &mut PciePipes, avail: Cycle, page_bytes: u64) -> EvictionTiming {
    let tr = pipes.schedule_d2h(avail, page_bytes);
    EvictionTiming::Transfer { start: tr.start, ready: tr.end }
}

/// Unobtrusive Eviction (§4.2): one preemptive eviction is issued by the
/// top-half ISR at batch start (overlapping the runtime fault-handling
/// window), and subsequent evictions are pipelined on the device-to-host
/// direction concurrently with host-to-device migrations.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnobtrusiveEviction;

impl EvictionStrategy for UnobtrusiveEviction {
    fn name(&self) -> &'static str {
        "ue"
    }

    fn schedule(&mut self, pipes: &mut PciePipes, avail: Cycle, page_bytes: u64) -> EvictionTiming {
        pipelined(pipes, avail, page_bytes)
    }

    fn preemptive(&self) -> bool {
        true
    }
}
