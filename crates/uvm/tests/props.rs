//! Property-based tests for the UVM runtime: structural invariants must
//! hold for arbitrary fault sequences under every eviction policy.

use batmem_types::config::UvmConfig;
use batmem_types::policy::{EvictionGranularity, EvictionPolicy, PolicyConfig, PrefetchPolicy};
use batmem_types::{AuditLevel, Cycle, PageId};
use batmem_uvm::{FaultBuffer, MemoryManager, TreePrefetcher, UvmEvent, UvmOutput, UvmRuntime};
use proptest::prelude::*;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, HashSet};

proptest! {
    #[test]
    fn fault_buffer_drains_sorted_distinct(
        faults in prop::collection::vec((0u64..100, 0u64..1000), 0..300),
        cap in 1u32..64,
    ) {
        let mut buf = FaultBuffer::new(cap);
        let mut expect = BTreeSet::new();
        for &(p, t) in &faults {
            buf.record(PageId::new(p), t);
            expect.insert(p);
        }
        let drained = buf.drain_sorted();
        let got: Vec<u64> = drained.iter().map(|p| p.index()).collect();
        let want: Vec<u64> = expect.into_iter().collect();
        prop_assert_eq!(got, want);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn prefetcher_output_is_disjoint_and_bounded(
        faults in prop::collection::vec(0u64..200, 1..100),
        threshold in 0u8..=100,
        valid in 1u64..250,
    ) {
        let mut sorted: Vec<PageId> =
            faults.iter().map(|&p| PageId::new(p)).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut pf = TreePrefetcher::new(32, threshold);
        let out = pf.expand(&sorted, |_| false, valid);
        let fault_set: HashSet<PageId> = sorted.iter().copied().collect();
        for p in &out {
            prop_assert!(!fault_set.contains(p), "prefetched a faulted page");
            prop_assert!(p.index() < valid, "prefetched past the address space");
        }
        // Sorted, distinct.
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn memory_manager_never_hands_out_a_frame_twice(
        ops in prop::collection::vec(0u64..64, 1..200),
        cap in 1u64..32,
    ) {
        let mut m = MemoryManager::new(Some(cap), Default::default(), 32);
        let mut in_use: HashSet<u32> = HashSet::new();
        for &p in &ops {
            let page = PageId::new(p);
            if m.is_resident(page) {
                m.touch(page);
                continue;
            }
            let frame = match m.take_frame() {
                Some(f) => f,
                None => {
                    let (victims, _) = m.pick_victims(|_| false);
                    prop_assert!(!victims.is_empty());
                    let f = m.remove(victims[0], 0).unwrap();
                    prop_assert!(in_use.remove(&f.index()), "freed unknown frame");
                    m.release_frame(f);
                    m.take_frame().unwrap()
                }
            };
            prop_assert!(in_use.insert(frame.index()), "frame handed out twice");
            prop_assert!(in_use.len() as u64 <= cap);
            m.mark_resident(page, frame, 0).unwrap();
        }
    }

    /// Model-based frame accounting: arbitrary interleavings of
    /// `take_frame`/`mark_resident`/`remove`/`release_frame` never leak a
    /// frame, never double-free one, reject illegal transitions with a typed
    /// error (without corrupting the books), and pass a full audit after
    /// every single operation.
    #[test]
    fn frame_accounting_never_leaks_or_double_frees(
        ops in prop::collection::vec((0u8..4, 0u64..48), 1..250),
        cap in 1u64..16,
    ) {
        let mut m = MemoryManager::new(Some(cap), Default::default(), 32);
        // Model state: page -> frame index for checked-out frames, plus the
        // set of frame indices sitting in the free pool.
        let mut model_resident: HashMap<u64, u32> = HashMap::new();
        let mut model_free: HashSet<u32> = HashSet::new();
        for &(kind, p) in &ops {
            let page = PageId::new(p);
            match kind {
                // Install: take a frame and map a page onto it.
                0 => match m.take_frame() {
                    Some(f) => {
                        // A reused frame must come from the free pool; a
                        // minted one must be brand new.
                        if !model_free.remove(&f.index()) {
                            prop_assert!(
                                (model_resident.len() + model_free.len()) < cap as usize,
                                "minted frame {} beyond capacity", f.index()
                            );
                        }
                        match model_resident.entry(p) {
                            Entry::Occupied(_) => {
                                // Double install must be rejected and must
                                // leave the books untouched.
                                prop_assert!(m.mark_resident(page, f, 0).is_err());
                                m.release_frame(f);
                                model_free.insert(f.index());
                            }
                            Entry::Vacant(slot) => {
                                m.mark_resident(page, f, 0).unwrap();
                                slot.insert(f.index());
                            }
                        }
                    }
                    None => prop_assert!(
                        model_free.is_empty()
                            && (model_resident.len() + model_free.len()) as u64 >= cap,
                        "take_frame refused below capacity"
                    ),
                },
                // Remove a specific page (legal only when resident).
                1 => {
                    if model_resident.contains_key(&p) {
                        let f = m.remove(page, 0).unwrap();
                        prop_assert_eq!(model_resident.remove(&p), Some(f.index()));
                        m.release_frame(f);
                        model_free.insert(f.index());
                    } else {
                        prop_assert!(m.remove(page, 0).is_err(), "removed non-resident page");
                    }
                }
                // Touch: LRU bump, never changes accounting.
                2 => m.touch(page),
                // Evict an LRU victim, as the runtime does under pressure.
                _ => {
                    if m.resident_count() > 0 {
                        let (victims, _) = m.pick_victims(|_| false);
                        prop_assert!(!victims.is_empty());
                        let f = m.remove(victims[0], 0).unwrap();
                        prop_assert_eq!(
                            model_resident.remove(&victims[0].index()),
                            Some(f.index())
                        );
                        m.release_frame(f);
                        model_free.insert(f.index());
                    }
                }
            }
            m.audit(0).unwrap();
            prop_assert_eq!(m.resident_count() as u64, model_resident.len() as u64);
            prop_assert_eq!(m.free_frames(), model_free.len());
            prop_assert!(m.minted_frames() <= cap, "minted past capacity");
            prop_assert_eq!(
                m.minted_frames(),
                (model_resident.len() + model_free.len()) as u64
            );
        }
    }
}

/// The BTreeMap-of-age-stamps LRU that the memory manager's intrusive list
/// replaced, kept as an executable specification: ascending stamp order must
/// equal the list's head→tail order, and victim selection (including the
/// pinned-aware root-chunk sweep) must agree exactly.
struct StampLruOracle {
    granularity: EvictionGranularity,
    pages_per_region: u64,
    next_stamp: u64,
    by_stamp: std::collections::BTreeMap<u64, u64>, // stamp -> page
    stamp_of: HashMap<u64, u64>,                    // page -> stamp
}

impl StampLruOracle {
    fn new(granularity: EvictionGranularity, pages_per_region: u64) -> Self {
        Self {
            granularity,
            pages_per_region,
            next_stamp: 0,
            by_stamp: std::collections::BTreeMap::new(),
            stamp_of: HashMap::new(),
        }
    }

    fn stamp(&mut self, page: u64) {
        self.by_stamp.insert(self.next_stamp, page);
        self.stamp_of.insert(page, self.next_stamp);
        self.next_stamp += 1;
    }

    fn mark(&mut self, page: u64) {
        assert!(!self.stamp_of.contains_key(&page), "oracle double mark");
        self.stamp(page);
    }

    fn touch(&mut self, page: u64) {
        if let Some(s) = self.stamp_of.remove(&page) {
            self.by_stamp.remove(&s);
            self.stamp(page);
        }
    }

    fn remove(&mut self, page: u64) {
        let s = self.stamp_of.remove(&page).expect("oracle removes resident pages");
        self.by_stamp.remove(&s);
    }

    fn resident(&self, page: u64) -> bool {
        self.stamp_of.contains_key(&page)
    }

    fn pick(&self, pinned: &dyn Fn(u64) -> bool) -> (Vec<u64>, bool) {
        let unpinned_lru = self.by_stamp.values().copied().find(|&p| !pinned(p));
        let (seed, forced) = match unpinned_lru {
            Some(p) => (p, false),
            None => match self.by_stamp.values().next() {
                Some(&p) => (p, true),
                None => return (Vec::new(), false),
            },
        };
        match self.granularity {
            EvictionGranularity::Page => (vec![seed], forced),
            EvictionGranularity::RootChunk => {
                let first = seed / self.pages_per_region * self.pages_per_region;
                let mut pages = vec![seed];
                for q in first..first + self.pages_per_region {
                    if q != seed && self.resident(q) && (forced || !pinned(q)) {
                        pages.push(q);
                    }
                }
                (pages, forced)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Model check of the intrusive-list LRU against the stamp oracle:
    /// arbitrary interleavings of install/touch/remove/pick under random pin
    /// sets agree on every victim list and forced flag, for both page and
    /// root-chunk granularity. Each pick is also replayed with everything
    /// pinned, which exercises the forced path deterministically.
    #[test]
    fn intrusive_lru_matches_the_stamp_oracle(
        ops in prop::collection::vec((0u8..4, 0u64..48, 0u64..=u64::MAX), 1..250),
        gran_idx in 0usize..2,
        pages_per_region in 1u64..9,
    ) {
        let granularity = [EvictionGranularity::Page, EvictionGranularity::RootChunk][gran_idx];
        let mut m = MemoryManager::new(None, granularity, pages_per_region);
        let mut oracle = StampLruOracle::new(granularity, pages_per_region);
        for &(kind, page, mask) in &ops {
            let p = PageId::new(page);
            match kind {
                0 => {
                    if !m.is_resident(p) {
                        let f = m.take_frame().unwrap();
                        m.mark_resident(p, f, 0).unwrap();
                        oracle.mark(page);
                    }
                }
                1 => {
                    if m.is_resident(p) {
                        let f = m.remove(p, 0).unwrap();
                        m.release_frame(f);
                        oracle.remove(page);
                    }
                }
                2 => {
                    m.touch(p);
                    oracle.touch(page);
                }
                _ => {
                    // Pin set from the op's random mask (bit i pins page i
                    // mod 64), so picks run with pins sprinkled anywhere in
                    // the LRU order.
                    let pin = |q: u64| mask & (1u64 << (q % 64)) != 0;
                    let got = m.pick_victims(|q| pin(q.index()));
                    let want = oracle.pick(&pin);
                    prop_assert_eq!(got.0.iter().map(|q| q.index()).collect::<Vec<_>>(), want.0);
                    prop_assert_eq!(got.1, want.1);
                    // Forced-pin replay: every resident page pinned.
                    let got = m.pick_victims(|_| true);
                    let want = oracle.pick(&|_| true);
                    prop_assert_eq!(got.0.iter().map(|q| q.index()).collect::<Vec<_>>(), want.0);
                    prop_assert_eq!(got.1, want.1);
                }
            }
            prop_assert_eq!(m.resident_count(), oracle.stamp_of.len());
            m.audit(0).unwrap();
        }
    }
}

/// Per-page (page, cycle) event times, in occurrence order.
type Timeline = Vec<(PageId, Cycle)>;

/// Drives a `UvmRuntime` through its own scheduled events, applying faults
/// at their prescribed times, and returns (installs, evicts, stats).
fn simulate(
    policy: &PolicyConfig,
    capacity: Option<u64>,
    faults: &[(u64, Cycle)],
) -> (Timeline, Timeline, batmem_uvm::UvmStats) {
    let cfg = UvmConfig { gpu_mem_pages: capacity, ..UvmConfig::default() };
    let mut rt = UvmRuntime::new(&cfg, policy, 2_000);
    // Every property run doubles as an auditor stress test: conservation
    // laws are re-checked after each event the runtime processes.
    rt.set_audit(AuditLevel::Full);
    // Timeline: merge fault injections with runtime events.
    let mut injections: Vec<(Cycle, PageId)> =
        faults.iter().map(|&(p, t)| (t, PageId::new(p))).collect();
    injections.sort_by_key(|&(t, _)| t);
    let mut queue: Vec<(Cycle, UvmEvent)> = Vec::new();
    let mut installs = Vec::new();
    let mut evicts = Vec::new();
    let mut resident: HashSet<PageId> = HashSet::new();

    let apply = |outs: Vec<UvmOutput>,
                 queue: &mut Vec<(Cycle, UvmEvent)>,
                 installs: &mut Vec<(PageId, Cycle)>,
                 evicts: &mut Vec<(PageId, Cycle)>,
                 resident: &mut HashSet<PageId>,
                 at: Cycle| {
        for o in outs {
            match o {
                UvmOutput::Schedule { at, event } => queue.push((at, event)),
                UvmOutput::Install { page, .. } => {
                    assert!(resident.insert(page), "double install of {page}");
                    installs.push((page, at));
                }
                UvmOutput::Evict { page } => {
                    assert!(resident.remove(&page), "evicting non-resident {page}");
                    evicts.push((page, at));
                }
                // These runtimes run with coalescing off.
                UvmOutput::Coalesce { region } => panic!("unexpected coalesce of {region}"),
                UvmOutput::Splinter { region } => panic!("unexpected splinter of {region}"),
            }
        }
    };

    let mut inj = 0;
    loop {
        let next_event = queue.iter().map(|&(t, _)| t).min();
        let next_inj = injections.get(inj).map(|&(t, _)| t);
        let take_injection = match (next_event, next_inj) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(te), Some(ti)) => ti <= te,
        };
        if take_injection {
            let (t, page) = injections[inj];
            inj += 1;
            // A fault only arises when the page is neither mapped nor
            // already migrating (the engine's guard).
            if !resident.contains(&page) && !rt.is_inflight(page) && !rt.is_resident(page) {
                let outs = rt.record_fault(page, t).unwrap();
                apply(outs, &mut queue, &mut installs, &mut evicts, &mut resident, t);
            }
        } else {
            let i = queue
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, _))| t)
                .map(|(i, _)| i)
                .unwrap();
            let (t, e) = queue.remove(i);
            let outs = rt.on_event(e, t).unwrap();
            apply(outs, &mut queue, &mut installs, &mut evicts, &mut resident, t);
        }
    }
    let stats = rt.stats();
    (installs, evicts, stats)
}

fn policies() -> Vec<PolicyConfig> {
    vec![
        PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() },
        PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::ue_only() },
        PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::ideal_eviction() },
        PolicyConfig::baseline(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn runtime_invariants_hold_for_arbitrary_fault_sequences(
        faults in prop::collection::vec((0u64..60, 0u64..2_000_000), 1..80),
        cap in 2u64..24,
        policy_idx in 0usize..4,
    ) {
        let policy = policies()[policy_idx];
        let (installs, _evicts, stats) = simulate(&policy, Some(cap), &faults);

        // Batches are non-overlapping, well-ordered, and structurally sound.
        let mut prev_end = 0;
        for b in &stats.batches {
            prop_assert!(b.start >= prev_end);
            prop_assert!(b.handling_done >= b.start);
            prop_assert!(b.first_migration_start >= b.handling_done);
            prop_assert!(b.end >= b.first_migration_start);
            prop_assert!(b.faults > 0);
            prev_end = b.end;
        }
        // Capacity is never exceeded.
        prop_assert!(stats.peak_resident_pages <= cap);
        // Every distinct faulted page is installed at least once.
        let faulted: HashSet<u64> = faults.iter().map(|&(p, _)| p).collect();
        let installed: HashSet<u64> = installs.iter().map(|&(p, _)| p.index()).collect();
        for p in &faulted {
            prop_assert!(installed.contains(p), "page {} never arrived", p);
        }
        // Accounting identities.
        let eviction_sum: u64 = stats.batches.iter().map(|b| u64::from(b.evictions)).sum();
        prop_assert_eq!(stats.evictions, eviction_sum);
        prop_assert!(stats.premature_evictions <= stats.evictions);
        if policy.eviction == EvictionPolicy::Ideal {
            prop_assert_eq!(stats.d2h_bytes, 0);
        }
    }

    #[test]
    fn unlimited_memory_never_evicts_prop(
        faults in prop::collection::vec((0u64..200, 0u64..1_000_000), 1..60),
    ) {
        let policy = PolicyConfig { prefetch: PrefetchPolicy::None, ..PolicyConfig::baseline() };
        let (_, evicts, stats) = simulate(&policy, None, &faults);
        prop_assert!(evicts.is_empty());
        prop_assert_eq!(stats.evictions, 0);
    }
}
