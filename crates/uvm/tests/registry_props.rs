//! Property-based tests for the policy registry's spec grammar.
//!
//! The contract under test: every axis turns arbitrary and malformed spec
//! strings into *typed* errors — `UnknownPolicy` with the right axis label
//! or `InvalidConfig` from the parameter parser — and never panics; and
//! every well-formed spec resolves. The `proptest!` harness catches
//! unwinds, so any panic inside a builder fails the property with the
//! offending spec printed.

use batmem_types::SimError;
use batmem_uvm::{PolicyRegistry, StrategyCtx};
use proptest::prelude::*;

/// The characters real specs are built from (colons included, so
/// multi-parameter and trailing-colon shapes appear often), plus a few
/// separators that must never confuse the parser.
const SPEC_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:-._ |";

/// Arbitrary spec-shaped garbage.
fn fuzz_spec() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..SPEC_CHARSET.len(), 0..18)
        .prop_map(|ix| ix.into_iter().map(|i| SPEC_CHARSET[i] as char).collect())
}

/// Every name registered on any of the five axes.
fn known_name() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("lru"),
        Just("ue"),
        Just("ideal"),
        Just("random"),
        Just("none"),
        Just("tree"),
        Just("to"),
        Just("etc"),
        Just("adaptive"),
        Just("off"),
        Just("greedy"),
        Just("splinter"),
        Just("cpu"),
        Just("gpu-driven"),
    ]
}

/// One parameter: in-range numbers, boundary/overflowing numbers, the
/// keyword parameters, empty, and plain junk.
fn fuzz_param() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u64..=u64::MAX).prop_map(|n| n.to_string()),
        (0u64..300).prop_map(|n| n.to_string()),
        Just("18446744073709551616".to_string()), // u64::MAX + 1
        Just("-1".to_string()),
        Just(String::new()),
        Just("fault".to_string()),
        Just("any".to_string()),
        Just("on-evict".to_string()),
        Just("x".to_string()),
    ]
}

fn ctx() -> StrategyCtx {
    StrategyCtx { pages_per_region: 32 }
}

/// Feeds one spec through all five axes. Success is fine; failure must be
/// one of the two parse-layer error variants, and an unknown-name
/// rejection must name the axis it happened on and list its real entries.
fn check_all_axes(r: &PolicyRegistry, spec: &str) {
    let c = ctx();
    let outcomes: [(&str, Option<SimError>); 5] = [
        ("eviction", r.build_eviction(spec, &c).err()),
        ("prefetch", r.build_prefetcher(spec, &c).err()),
        ("oversubscription", r.build_oversubscription(spec).err()),
        ("coalesce", r.build_coalesce(spec).err()),
        ("fault-servicing", r.build_servicing(spec).err()),
    ];
    for (axis, err) in outcomes {
        match err {
            None | Some(SimError::InvalidConfig { .. }) => {}
            Some(SimError::UnknownPolicy { axis: got, name, known }) => {
                assert_eq!(got, axis, "wrong axis label for spec {spec:?}");
                assert!(!known.is_empty(), "{axis}: empty known-name list");
                assert!(
                    !name.contains(':'),
                    "{axis}: unsplit spec leaked into the error: {name:?}"
                );
            }
            Some(other) => {
                panic!("{axis}: non-parse error {other:?} for spec {spec:?}")
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage on every axis: typed errors or clean builds,
    /// never a panic.
    #[test]
    fn arbitrary_specs_never_panic_on_any_axis(spec in fuzz_spec()) {
        check_all_axes(&PolicyRegistry::builtin(), &spec);
    }

    /// Known names with fuzzed parameter lists (0–3 parameters drawn from
    /// numbers, overflow literals, keywords, and junk) never panic on any
    /// axis — including the axes the name does *not* belong to.
    #[test]
    fn known_names_with_fuzzed_params_never_panic(
        name in known_name(),
        params in prop::collection::vec(fuzz_param(), 0..3),
    ) {
        let mut spec = name.to_string();
        for p in &params {
            spec.push(':');
            spec.push_str(p);
        }
        check_all_axes(&PolicyRegistry::builtin(), &spec);
    }

    /// The three percentage-parameterized specs (`etc`, `tree`, `greedy`)
    /// share one validation law: accepted exactly on 1..=100, rejected
    /// with `InvalidConfig` everywhere else — including the `etc:0` shape
    /// the parser used to wave through.
    #[test]
    fn percent_params_accept_exactly_1_to_100(pct in 0u64..400) {
        let r = PolicyRegistry::builtin();
        let c = ctx();
        let in_range = (1..=100).contains(&pct);
        let outcomes = [
            ("etc", r.build_oversubscription(&format!("etc:{pct}")).err()),
            ("tree", r.build_prefetcher(&format!("tree:{pct}"), &c).err()),
            ("greedy", r.build_coalesce(&format!("greedy:{pct}")).err()),
        ];
        for (name, err) in outcomes {
            match err {
                None => prop_assert!(in_range, "{name}:{pct} accepted out of range"),
                Some(SimError::InvalidConfig { .. }) => {
                    prop_assert!(!in_range, "{name}:{pct} rejected in range")
                }
                Some(other) => panic!("{name}:{pct}: unexpected error {other:?}"),
            }
        }
    }

    /// Positive cycle-count parameters resolve across the whole u64 range
    /// (no hidden overflow in the epoch or occupancy arithmetic at parse
    /// time), and zero is rejected where a zero would wedge the model.
    #[test]
    fn positive_u64_params_resolve(v in 1u64..=u64::MAX) {
        let r = PolicyRegistry::builtin();
        let c = ctx();
        prop_assert!(r.build_oversubscription(&format!("adaptive:{v}")).is_ok());
        prop_assert!(r.build_servicing(&format!("gpu-driven:{v}")).is_ok());
        prop_assert!(r.build_eviction(&format!("random:{v}"), &c).is_ok());
    }

    /// A trailing colon (empty parameter) is malformed on every known
    /// name: nothing parses `""` as a number, trigger, or mode, and
    /// no-parameter names reject any parameter list at all.
    #[test]
    fn trailing_colon_is_always_rejected(name in known_name()) {
        check_all_axes(&PolicyRegistry::builtin(), &format!("{name}:"));
        let r = PolicyRegistry::builtin();
        let c = ctx();
        let spec = format!("{name}:");
        let all_err = r.build_eviction(&spec, &c).is_err()
            && r.build_prefetcher(&spec, &c).is_err()
            && r.build_oversubscription(&spec).is_err()
            && r.build_coalesce(&spec).is_err()
            && r.build_servicing(&spec).is_err();
        prop_assert!(all_err, "{spec:?} resolved on some axis");
    }
}

/// Zero is rejected exactly where a zero parameter would wedge the model.
#[test]
fn zero_params_are_rejected_where_they_would_wedge() {
    let r = PolicyRegistry::builtin();
    let c = ctx();
    assert!(matches!(
        r.build_oversubscription("adaptive:0"),
        Err(SimError::InvalidConfig { .. })
    ));
    assert!(matches!(r.build_servicing("gpu-driven:0"), Err(SimError::InvalidConfig { .. })));
    // A zero random seed is a legal seed.
    assert!(r.build_eviction("random:0", &c).is_ok());
}
