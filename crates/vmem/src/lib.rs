//! Virtual-memory substrate: page tables, TLBs, and the page-table walker.
//!
//! This crate models the GPU-side address-translation hardware the paper's
//! simulator extends MacSim with (§5.1):
//!
//! * a per-SM, fully associative **L1 TLB** and a shared, set-associative
//!   **L2 TLB** ([`tlb`]),
//! * a shared, **highly threaded page-table walker** (64 concurrent walks)
//!   with a page-walk cache ([`walker`]),
//! * the GPU **page table** mapping resident virtual pages to device frames
//!   ([`page_table`]),
//! * and [`Mmu`], the facade combining them: a single
//!   [`Mmu::translate`] call yields the translation latency and
//!   whether the access page-faults.
//!
//! # Examples
//!
//! ```
//! use batmem_types::{SimConfig, PageId, FrameId, SmId};
//! use batmem_vmem::{Mmu, TranslationOutcome};
//!
//! let config = SimConfig::default();
//! let mut mmu = Mmu::new(&config);
//! let page = PageId::new(7);
//!
//! // Non-resident page: the walk completes, then faults.
//! let t = mmu.translate(SmId::new(0), page, 0)?;
//! assert_eq!(t.outcome, TranslationOutcome::Fault);
//!
//! // Make it resident, then translation succeeds (and later hits the TLB).
//! mmu.install(page, FrameId::new(3), 500)?;
//! let t = mmu.translate(SmId::new(0), page, 1000)?;
//! assert_eq!(t.outcome, TranslationOutcome::Resident(FrameId::new(3)));
//! # Ok::<(), batmem_types::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mmu;
pub mod page_table;
pub mod tlb;
pub mod walker;

pub use mmu::{Mmu, MmuStats, Translation, TranslationOutcome};
pub use page_table::GpuPageTable;
pub use tlb::{Tlb, TlbKey, TlbStats};
pub use walker::PageTableWalker;
