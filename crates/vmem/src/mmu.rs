//! The MMU facade: per-SM L1 TLBs + shared L2 TLB + walker + page table.

use crate::page_table::GpuPageTable;
use crate::tlb::{Tlb, TlbStats};
use crate::walker::PageTableWalker;
use batmem_types::{Cycle, FrameId, PageId, SimConfig, SimError, SmId};

/// The outcome of an address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// The page is resident; the access may proceed to the data path.
    Resident(FrameId),
    /// The page-table walk found no mapping: a page fault. The issuing warp
    /// must stall until the UVM runtime migrates the page.
    Fault,
}

/// A completed translation: the cycles it took and what it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Translation latency in cycles (TLB lookups, plus a walk on TLB miss,
    /// including walker queueing).
    pub latency: Cycle,
    /// Hit/fault outcome.
    pub outcome: TranslationOutcome,
}

/// Aggregated MMU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Per-run totals over all L1 TLBs.
    pub l1: TlbStats,
    /// Shared L2 TLB totals.
    pub l2: TlbStats,
    /// Page-table walks performed.
    pub walks: u64,
    /// Walks that queued behind the walker's concurrency limit.
    pub queued_walks: u64,
    /// Translations that ended in a page fault.
    pub faults: u64,
}

/// The GPU memory-management unit.
///
/// Owns the translation hardware and the GPU page table. The UVM runtime
/// mutates residency through [`Mmu::install`] / [`Mmu::evict`]; SMs translate
/// through [`Mmu::translate`].
#[derive(Debug)]
pub struct Mmu {
    l1_tlbs: Vec<Tlb>,
    l2_tlb: Tlb,
    walker: PageTableWalker,
    page_table: GpuPageTable,
    l1_hit_latency: Cycle,
    l2_hit_latency: Cycle,
    faults: u64,
}

impl Mmu {
    /// Builds the MMU described by `config` (Table 1 geometry by default).
    pub fn new(config: &SimConfig) -> Self {
        let t = &config.tlb;
        Self {
            l1_tlbs: (0..config.gpu.num_sms)
                .map(|_| Tlb::fully_associative(t.l1_entries))
                .collect(),
            l2_tlb: Tlb::new(t.l2_entries, t.l2_ways),
            walker: PageTableWalker::new(
                t.walker_threads,
                t.walk_latency,
                t.pwc_miss_penalty,
                t.pwc_entries,
            ),
            page_table: GpuPageTable::new(),
            l1_hit_latency: t.l1_hit_latency,
            l2_hit_latency: t.l2_hit_latency,
            faults: 0,
        }
    }

    /// Translates `page` for SM `sm` starting at time `now`.
    ///
    /// Models the full path: L1 TLB (hit ⇒ done), L2 TLB (hit ⇒ fill L1),
    /// else a page-table walk through the shared walker. A walk that finds
    /// no resident mapping is a fault; faulting translations do **not**
    /// fill the TLBs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if a TLB holds an entry for a
    /// non-resident page — TLB entries exist only for resident pages, so
    /// this means a shootdown was lost.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range for the configured SM count.
    pub fn translate(&mut self, sm: SmId, page: PageId, now: Cycle) -> Result<Translation, SimError> {
        let stale = |level: &str| SimError::Accounting {
            cycle: now,
            detail: format!("{level} TLB holds an entry for non-resident page {page}"),
        };
        let l1 = &mut self.l1_tlbs[sm.index()];
        if l1.lookup(page) {
            // TLB entries exist only for resident pages.
            let frame = self.page_table.translate(page).ok_or_else(|| stale("L1"))?;
            return Ok(Translation {
                latency: self.l1_hit_latency,
                outcome: TranslationOutcome::Resident(frame),
            });
        }
        let mut latency = self.l1_hit_latency + self.l2_hit_latency;
        if self.l2_tlb.lookup(page) {
            let frame = self.page_table.translate(page).ok_or_else(|| stale("L2"))?;
            self.l1_tlbs[sm.index()].insert(page);
            return Ok(Translation { latency, outcome: TranslationOutcome::Resident(frame) });
        }
        let walk_done = self.walker.begin_walk(now + latency, page);
        latency = walk_done - now;
        Ok(match self.page_table.translate(page) {
            Some(frame) => {
                self.l1_tlbs[sm.index()].insert(page);
                self.l2_tlb.insert(page);
                Translation { latency, outcome: TranslationOutcome::Resident(frame) }
            }
            None => {
                self.faults += 1;
                Translation { latency, outcome: TranslationOutcome::Fault }
            }
        })
    }

    /// Installs a resident mapping (page migration completed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is already resident —
    /// the UVM runtime must never double-migrate a page.
    pub fn install(&mut self, page: PageId, frame: FrameId, now: Cycle) -> Result<(), SimError> {
        match self.page_table.install(page, frame) {
            None => Ok(()),
            Some(prev) => Err(SimError::Accounting {
                cycle: now,
                detail: format!(
                    "page {page} migrated while already resident (held {prev}, offered {frame})"
                ),
            }),
        }
    }

    /// Evicts `page`: removes the mapping and shoots down every TLB.
    ///
    /// Returns the frame the page occupied.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is not resident.
    pub fn evict(&mut self, page: PageId, now: Cycle) -> Result<FrameId, SimError> {
        let Some(frame) = self.page_table.remove(page) else {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("evicting non-resident page {page}"),
            });
        };
        for tlb in &mut self.l1_tlbs {
            tlb.invalidate(page);
        }
        self.l2_tlb.invalidate(page);
        Ok(frame)
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.page_table.is_resident(page)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_table.resident_pages()
    }

    /// Read-only access to the page table.
    pub fn page_table(&self) -> &GpuPageTable {
        &self.page_table
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MmuStats {
        let mut l1 = TlbStats::default();
        for t in &self.l1_tlbs {
            let s = t.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.shootdowns += s.shootdowns;
        }
        MmuStats {
            l1,
            l2: self.l2_tlb.stats(),
            walks: self.walker.walks(),
            queued_walks: self.walker.queued_walks(),
            faults: self.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(&SimConfig::default())
    }

    #[test]
    fn miss_walk_fault_then_resident_path() {
        let mut m = mmu();
        let page = PageId::new(3);
        let t = m.translate(SmId::new(0), page, 0).unwrap();
        assert_eq!(t.outcome, TranslationOutcome::Fault);
        // Walk latency: L1 + L2 lookup + walk + PWC miss penalty.
        assert_eq!(t.latency, 1 + 10 + 200 + 100);

        m.install(page, FrameId::new(0), 0).unwrap();
        let t = m.translate(SmId::new(0), page, 1000).unwrap();
        assert!(matches!(t.outcome, TranslationOutcome::Resident(_)));
        // This walk hits the PWC (same group).
        assert_eq!(t.latency, 1 + 10 + 200);

        // Now cached in the L1 TLB.
        let t = m.translate(SmId::new(0), page, 2000).unwrap();
        assert_eq!(t.latency, 1);
    }

    #[test]
    fn l2_tlb_serves_other_sms() {
        let mut m = mmu();
        let page = PageId::new(3);
        m.install(page, FrameId::new(0), 0).unwrap();
        let _ = m.translate(SmId::new(0), page, 0).unwrap(); // fills L1(0) and L2
        let t = m.translate(SmId::new(1), page, 1000).unwrap();
        assert_eq!(t.latency, 1 + 10); // L2 hit
        let t = m.translate(SmId::new(1), page, 2000).unwrap();
        assert_eq!(t.latency, 1); // now L1(1) hit
    }

    #[test]
    fn faults_do_not_fill_tlbs() {
        let mut m = mmu();
        let page = PageId::new(3);
        let _ = m.translate(SmId::new(0), page, 0).unwrap();
        // Second translation must walk again (would be a latency-1 TLB hit
        // if the fault had been cached).
        let t = m.translate(SmId::new(0), page, 10_000).unwrap();
        assert!(t.latency > 100);
        assert_eq!(m.stats().faults, 2);
    }

    #[test]
    fn evict_shoots_down_all_tlbs() {
        let mut m = mmu();
        let page = PageId::new(5);
        m.install(page, FrameId::new(1), 0).unwrap();
        let _ = m.translate(SmId::new(0), page, 0).unwrap();
        let _ = m.translate(SmId::new(2), page, 0).unwrap();
        let frame = m.evict(page, 40_000).unwrap();
        assert_eq!(frame, FrameId::new(1));
        assert!(!m.is_resident(page));
        // Both L1 copies and the L2 copy are gone: next access faults.
        let t = m.translate(SmId::new(0), page, 50_000).unwrap();
        assert_eq!(t.outcome, TranslationOutcome::Fault);
        assert!(m.stats().l1.shootdowns + m.stats().l2.shootdowns >= 3);
    }

    #[test]
    fn double_install_is_an_accounting_error() {
        let mut m = mmu();
        m.install(PageId::new(1), FrameId::new(0), 0).unwrap();
        let err = m.install(PageId::new(1), FrameId::new(1), 777).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert_eq!(err.cycle(), Some(777));
        assert!(err.to_string().contains("already resident"));
    }

    #[test]
    fn evicting_absent_page_is_an_accounting_error() {
        let mut m = mmu();
        let err = m.evict(PageId::new(1), 55).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert_eq!(err.cycle(), Some(55));
        assert!(err.to_string().contains("non-resident"));
    }

    #[test]
    fn walker_contention_reflected_in_latency() {
        let mut m = mmu();
        // Issue more concurrent walks than walker threads (64).
        let mut latencies = Vec::new();
        for i in 0..80 {
            let t = m.translate(SmId::new(0), PageId::new(1000 + i * 600), 0).unwrap();
            latencies.push(t.latency);
        }
        assert!(latencies[79] > latencies[0]);
        assert!(m.stats().queued_walks > 0);
    }
}
