//! The MMU facade: per-SM L1 TLBs + shared L2 TLB + walker + page table.

use crate::page_table::GpuPageTable;
use crate::tlb::{Tlb, TlbStats};
use crate::walker::PageTableWalker;
use batmem_types::{Cycle, FrameId, PageId, RegionId, SimConfig, SimError, SmId};

/// The outcome of an address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// The page is resident; the access may proceed to the data path.
    Resident(FrameId),
    /// The page-table walk found no mapping: a page fault. The issuing warp
    /// must stall until the UVM runtime migrates the page.
    Fault,
}

/// A completed translation: the cycles it took and what it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Translation latency in cycles (TLB lookups, plus a walk on TLB miss,
    /// including walker queueing).
    pub latency: Cycle,
    /// Hit/fault outcome.
    pub outcome: TranslationOutcome,
}

/// Aggregated MMU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Per-run totals over all L1 TLBs.
    pub l1: TlbStats,
    /// Shared L2 TLB totals.
    pub l2: TlbStats,
    /// Per-run totals over all large-page L1 TLBs (all zero unless some
    /// group was promoted).
    pub l1_large: TlbStats,
    /// Shared large-page L2 TLB totals.
    pub l2_large: TlbStats,
    /// Page-table walks performed.
    pub walks: u64,
    /// Walks that resolved at a large-page PTE (half-latency).
    pub large_walks: u64,
    /// Walks that queued behind the walker's concurrency limit.
    pub queued_walks: u64,
    /// Translations that ended in a page fault.
    pub faults: u64,
    /// Large-page promotions (coalesces) applied over the run.
    pub coalesces: u64,
    /// Large-page demotions (splinters) applied over the run.
    pub splinters: u64,
}

impl MmuStats {
    /// Translations served by a large-page structure (either large TLB
    /// tier or a large walk).
    pub fn large_hits(&self) -> u64 {
        self.l1_large.hits + self.l2_large.hits + self.large_walks
    }
}

/// The GPU memory-management unit.
///
/// Owns the translation hardware and the GPU page table. The UVM runtime
/// mutates residency through [`Mmu::install`] / [`Mmu::evict`]; SMs translate
/// through [`Mmu::translate`].
#[derive(Debug)]
pub struct Mmu {
    l1_tlbs: Vec<Tlb>,
    l2_tlb: Tlb,
    /// Per-SM large-page TLBs, tagged by large-page group. Consulted only
    /// while at least one group is promoted, so with coalescing off the
    /// translate path is bit-identical to the single-granularity model.
    large_l1_tlbs: Vec<Tlb<RegionId>>,
    /// Shared large-page L2 TLB.
    large_l2_tlb: Tlb<RegionId>,
    walker: PageTableWalker,
    page_table: GpuPageTable,
    l1_hit_latency: Cycle,
    l2_hit_latency: Cycle,
    faults: u64,
}

impl Mmu {
    /// Builds the MMU described by `config` (Table 1 geometry by default).
    /// The large-page TLBs mirror the base TLB shapes, tagged at the
    /// geometry's large-page granularity.
    pub fn new(config: &SimConfig) -> Self {
        let t = &config.tlb;
        Self {
            l1_tlbs: (0..config.gpu.num_sms)
                .map(|_| Tlb::fully_associative(t.l1_entries))
                .collect(),
            l2_tlb: Tlb::new(t.l2_entries, t.l2_ways),
            large_l1_tlbs: (0..config.gpu.num_sms)
                .map(|_| Tlb::fully_associative(t.l1_entries))
                .collect(),
            large_l2_tlb: Tlb::new(t.l2_entries, t.l2_ways),
            walker: PageTableWalker::new(
                t.walker_threads,
                t.walk_latency,
                t.pwc_miss_penalty,
                t.pwc_entries,
            ),
            page_table: GpuPageTable::with_pages_per_large(
                config.uvm.geometry.pages_per_large(),
            ),
            l1_hit_latency: t.l1_hit_latency,
            l2_hit_latency: t.l2_hit_latency,
            faults: 0,
        }
    }

    /// Translates `page` for SM `sm` starting at time `now`.
    ///
    /// Models the full path: L1 TLB (hit ⇒ done), L2 TLB (hit ⇒ fill L1),
    /// else a page-table walk through the shared walker. A walk that finds
    /// no resident mapping is a fault; faulting translations do **not**
    /// fill the TLBs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if a TLB holds an entry for a
    /// non-resident page — TLB entries exist only for resident pages, so
    /// this means a shootdown was lost.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range for the configured SM count.
    pub fn translate(&mut self, sm: SmId, page: PageId, now: Cycle) -> Result<Translation, SimError> {
        let stale = |level: &str| SimError::Accounting {
            cycle: now,
            detail: format!("{level} TLB holds an entry for non-resident page {page}"),
        };
        let l1 = &mut self.l1_tlbs[sm.index()];
        if l1.lookup(page) {
            // TLB entries exist only for resident pages.
            let frame = self.page_table.translate(page).ok_or_else(|| stale("L1"))?;
            return Ok(Translation {
                latency: self.l1_hit_latency,
                outcome: TranslationOutcome::Resident(frame),
            });
        }
        // The large-page side is consulted only while some group holds a
        // promoted mapping; with coalescing off this whole block is one
        // never-taken branch and the path below is the classic model.
        if self.page_table.has_promotions() {
            let group = self.page_table.group_of(page);
            if self.large_l1_tlbs[sm.index()].lookup(group) {
                // A promoted group is fully resident (splinter-before-evict
                // invariant), so the base entry must exist.
                let frame = self.page_table.translate(page).ok_or_else(|| stale("large L1"))?;
                return Ok(Translation {
                    latency: self.l1_hit_latency,
                    outcome: TranslationOutcome::Resident(frame),
                });
            }
        }
        let mut latency = self.l1_hit_latency + self.l2_hit_latency;
        if self.l2_tlb.lookup(page) {
            let frame = self.page_table.translate(page).ok_or_else(|| stale("L2"))?;
            self.l1_tlbs[sm.index()].insert(page);
            return Ok(Translation { latency, outcome: TranslationOutcome::Resident(frame) });
        }
        if self.page_table.has_promotions() {
            let group = self.page_table.group_of(page);
            if self.large_l2_tlb.lookup(group) {
                let frame = self.page_table.translate(page).ok_or_else(|| stale("large L2"))?;
                self.large_l1_tlbs[sm.index()].insert(group);
                return Ok(Translation { latency, outcome: TranslationOutcome::Resident(frame) });
            }
            if self.page_table.is_promoted(group) {
                // The walk resolves one level early at the large PTE and
                // fills the large TLBs: one entry now covers the group.
                let walk_done = self.walker.begin_large_walk(now + latency);
                latency = walk_done - now;
                let frame =
                    self.page_table.translate(page).ok_or_else(|| stale("promoted group"))?;
                self.large_l1_tlbs[sm.index()].insert(group);
                self.large_l2_tlb.insert(group);
                return Ok(Translation { latency, outcome: TranslationOutcome::Resident(frame) });
            }
        }
        let walk_done = self.walker.begin_walk(now + latency, page);
        latency = walk_done - now;
        Ok(match self.page_table.translate(page) {
            Some(frame) => {
                self.l1_tlbs[sm.index()].insert(page);
                self.l2_tlb.insert(page);
                Translation { latency, outcome: TranslationOutcome::Resident(frame) }
            }
            None => {
                self.faults += 1;
                Translation { latency, outcome: TranslationOutcome::Fault }
            }
        })
    }

    /// Promotes a fully-resident large-page group to one large mapping
    /// (coalescing). The next walk for any of its pages resolves at the
    /// large PTE and fills the large TLBs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the group is not fully resident
    /// or is already promoted — the coalescing policy must only promote
    /// full, unpromoted groups.
    pub fn promote(&mut self, group: RegionId, now: Cycle) -> Result<(), SimError> {
        if self.page_table.promote(group) {
            Ok(())
        } else {
            Err(SimError::Accounting {
                cycle: now,
                detail: format!(
                    "coalescing {group}: not fully resident ({}/{} pages) or already promoted",
                    self.page_table.group_resident(group),
                    self.page_table.pages_per_large()
                ),
            })
        }
    }

    /// Splinters a promoted group back to base-page mappings and shoots
    /// its large-TLB entries down everywhere. Base-page entries (and their
    /// TLB entries) survive: splintering is metadata-only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the group is not promoted.
    pub fn splinter(&mut self, group: RegionId, now: Cycle) -> Result<(), SimError> {
        if !self.page_table.splinter(group) {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("splintering {group}, which holds no large mapping"),
            });
        }
        for tlb in &mut self.large_l1_tlbs {
            tlb.invalidate(group);
        }
        self.large_l2_tlb.invalidate(group);
        Ok(())
    }

    /// Installs a resident mapping (page migration completed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is already resident —
    /// the UVM runtime must never double-migrate a page.
    pub fn install(&mut self, page: PageId, frame: FrameId, now: Cycle) -> Result<(), SimError> {
        match self.page_table.install(page, frame) {
            None => Ok(()),
            Some(prev) => Err(SimError::Accounting {
                cycle: now,
                detail: format!(
                    "page {page} migrated while already resident (held {prev}, offered {frame})"
                ),
            }),
        }
    }

    /// Evicts `page`: removes the mapping and shoots down every TLB.
    ///
    /// Returns the frame the page occupied.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is not resident.
    pub fn evict(&mut self, page: PageId, now: Cycle) -> Result<FrameId, SimError> {
        let Some(frame) = self.page_table.remove(page) else {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("evicting non-resident page {page}"),
            });
        };
        for tlb in &mut self.l1_tlbs {
            tlb.invalidate(page);
        }
        self.l2_tlb.invalidate(page);
        Ok(frame)
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.page_table.is_resident(page)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_table.resident_pages()
    }

    /// Read-only access to the page table.
    pub fn page_table(&self) -> &GpuPageTable {
        &self.page_table
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MmuStats {
        let mut l1 = TlbStats::default();
        for t in &self.l1_tlbs {
            let s = t.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.shootdowns += s.shootdowns;
        }
        let mut l1_large = TlbStats::default();
        for t in &self.large_l1_tlbs {
            let s = t.stats();
            l1_large.hits += s.hits;
            l1_large.misses += s.misses;
            l1_large.shootdowns += s.shootdowns;
        }
        MmuStats {
            l1,
            l2: self.l2_tlb.stats(),
            l1_large,
            l2_large: self.large_l2_tlb.stats(),
            walks: self.walker.walks(),
            large_walks: self.walker.large_walks(),
            queued_walks: self.walker.queued_walks(),
            faults: self.faults,
            coalesces: self.page_table.coalesces(),
            splinters: self.page_table.splinters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(&SimConfig::default())
    }

    #[test]
    fn miss_walk_fault_then_resident_path() {
        let mut m = mmu();
        let page = PageId::new(3);
        let t = m.translate(SmId::new(0), page, 0).unwrap();
        assert_eq!(t.outcome, TranslationOutcome::Fault);
        // Walk latency: L1 + L2 lookup + walk + PWC miss penalty.
        assert_eq!(t.latency, 1 + 10 + 200 + 100);

        m.install(page, FrameId::new(0), 0).unwrap();
        let t = m.translate(SmId::new(0), page, 1000).unwrap();
        assert!(matches!(t.outcome, TranslationOutcome::Resident(_)));
        // This walk hits the PWC (same group).
        assert_eq!(t.latency, 1 + 10 + 200);

        // Now cached in the L1 TLB.
        let t = m.translate(SmId::new(0), page, 2000).unwrap();
        assert_eq!(t.latency, 1);
    }

    #[test]
    fn l2_tlb_serves_other_sms() {
        let mut m = mmu();
        let page = PageId::new(3);
        m.install(page, FrameId::new(0), 0).unwrap();
        let _ = m.translate(SmId::new(0), page, 0).unwrap(); // fills L1(0) and L2
        let t = m.translate(SmId::new(1), page, 1000).unwrap();
        assert_eq!(t.latency, 1 + 10); // L2 hit
        let t = m.translate(SmId::new(1), page, 2000).unwrap();
        assert_eq!(t.latency, 1); // now L1(1) hit
    }

    #[test]
    fn faults_do_not_fill_tlbs() {
        let mut m = mmu();
        let page = PageId::new(3);
        let _ = m.translate(SmId::new(0), page, 0).unwrap();
        // Second translation must walk again (would be a latency-1 TLB hit
        // if the fault had been cached).
        let t = m.translate(SmId::new(0), page, 10_000).unwrap();
        assert!(t.latency > 100);
        assert_eq!(m.stats().faults, 2);
    }

    #[test]
    fn evict_shoots_down_all_tlbs() {
        let mut m = mmu();
        let page = PageId::new(5);
        m.install(page, FrameId::new(1), 0).unwrap();
        let _ = m.translate(SmId::new(0), page, 0).unwrap();
        let _ = m.translate(SmId::new(2), page, 0).unwrap();
        let frame = m.evict(page, 40_000).unwrap();
        assert_eq!(frame, FrameId::new(1));
        assert!(!m.is_resident(page));
        // Both L1 copies and the L2 copy are gone: next access faults.
        let t = m.translate(SmId::new(0), page, 50_000).unwrap();
        assert_eq!(t.outcome, TranslationOutcome::Fault);
        assert!(m.stats().l1.shootdowns + m.stats().l2.shootdowns >= 3);
    }

    #[test]
    fn double_install_is_an_accounting_error() {
        let mut m = mmu();
        m.install(PageId::new(1), FrameId::new(0), 0).unwrap();
        let err = m.install(PageId::new(1), FrameId::new(1), 777).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert_eq!(err.cycle(), Some(777));
        assert!(err.to_string().contains("already resident"));
    }

    #[test]
    fn evicting_absent_page_is_an_accounting_error() {
        let mut m = mmu();
        let err = m.evict(PageId::new(1), 55).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert_eq!(err.cycle(), Some(55));
        assert!(err.to_string().contains("non-resident"));
    }

    #[test]
    fn coalesced_group_collapses_tlb_and_walk_cost() {
        let mut m = mmu();
        // Make pages 0..32 (one default large group) resident.
        for i in 0..32 {
            m.install(PageId::new(i), FrameId::new(i as u32), 0).unwrap();
        }
        let group = batmem_types::RegionId::new(0);
        m.promote(group, 0).unwrap();
        // First touch: large walk (half latency, no PWC penalty), fills the
        // large TLBs.
        let t = m.translate(SmId::new(0), PageId::new(0), 0).unwrap();
        assert!(matches!(t.outcome, TranslationOutcome::Resident(_)));
        assert_eq!(t.latency, 1 + 10 + 100);
        // Every other page of the group now hits the large L1 at L1 cost.
        for i in 1..32 {
            let t = m.translate(SmId::new(0), PageId::new(i), 100 + i).unwrap();
            assert_eq!(t.latency, 1, "page {i} should ride the large mapping");
        }
        let s = m.stats();
        assert_eq!(s.large_walks, 1);
        assert_eq!(s.l1_large.hits, 31);
        assert_eq!(s.coalesces, 1);
        assert_eq!(s.large_hits(), 32);
        // Another SM rides the shared large L2.
        let t = m.translate(SmId::new(3), PageId::new(17), 5000).unwrap();
        assert_eq!(t.latency, 1 + 10);
        assert_eq!(m.stats().l2_large.hits, 1);
    }

    #[test]
    fn splinter_restores_base_granularity() {
        let mut m = mmu();
        for i in 0..32 {
            m.install(PageId::new(i), FrameId::new(i as u32), 0).unwrap();
        }
        let group = batmem_types::RegionId::new(0);
        m.promote(group, 0).unwrap();
        let _ = m.translate(SmId::new(0), PageId::new(4), 0).unwrap();
        m.splinter(group, 100).unwrap();
        // Large entries are gone; the next access walks at base granularity.
        let t = m.translate(SmId::new(0), PageId::new(5), 200).unwrap();
        assert!(t.latency > 100);
        let s = m.stats();
        assert_eq!(s.splinters, 1);
        assert!(s.l1_large.shootdowns + s.l2_large.shootdowns >= 2);
        // Base pages are still resident: eviction below is now legal.
        m.evict(PageId::new(5), 300).unwrap();
        assert!(!m.is_resident(PageId::new(5)));
    }

    #[test]
    fn promote_and_splinter_guard_their_invariants() {
        let mut m = mmu();
        let group = batmem_types::RegionId::new(0);
        m.install(PageId::new(0), FrameId::new(0), 0).unwrap();
        let err = m.promote(group, 7).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert!(err.to_string().contains("not fully resident"));
        let err = m.splinter(group, 8).unwrap_err();
        assert!(err.to_string().contains("no large mapping"));
    }

    #[test]
    fn walker_contention_reflected_in_latency() {
        let mut m = mmu();
        // Issue more concurrent walks than walker threads (64).
        let mut latencies = Vec::new();
        for i in 0..80 {
            let t = m.translate(SmId::new(0), PageId::new(1000 + i * 600), 0).unwrap();
            latencies.push(t.latency);
        }
        assert!(latencies[79] > latencies[0]);
        assert!(m.stats().queued_walks > 0);
    }
}
