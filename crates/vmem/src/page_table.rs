//! The GPU page table: resident virtual-page → device-frame mappings.

use batmem_types::dense::PageMap;
use batmem_types::{FrameId, PageId};

/// The GPU-side page table.
///
/// Only **resident** pages have entries; a missing entry is what turns a
/// completed page-table walk into a page fault. The UVM runtime installs an
/// entry when a page's migration finishes and removes it when the page is
/// evicted (§2.2 of the paper).
///
/// Entries live in a dense page-indexed table (page IDs are dense
/// `0..footprint_pages`), so translate/install/remove are array accesses.
#[derive(Debug, Clone, Default)]
pub struct GpuPageTable {
    entries: PageMap<FrameId>,
    installs: u64,
    removals: u64,
}

impl GpuPageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the frame backing `page`, if resident.
    pub fn translate(&self, page: PageId) -> Option<FrameId> {
        self.entries.get(page).copied()
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.entries.contains(page)
    }

    /// Installs a mapping (page migration completed).
    ///
    /// Returns the previous frame if the page was already mapped, which
    /// callers treat as a runtime invariant violation.
    pub fn install(&mut self, page: PageId, frame: FrameId) -> Option<FrameId> {
        self.installs += 1;
        self.entries.insert(page, frame)
    }

    /// Removes a mapping (page evicted), returning the frame it occupied.
    pub fn remove(&mut self, page: PageId) -> Option<FrameId> {
        let f = self.entries.remove(page);
        if f.is_some() {
            self.removals += 1;
        }
        f
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.entries.len()
    }

    /// Total mappings installed over the run.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Total mappings removed over the run.
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// Iterates over resident `(page, frame)` pairs in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, FrameId)> + '_ {
        self.entries.iter().map(|(p, &f)| (p, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_translate_remove_round_trip() {
        let mut pt = GpuPageTable::new();
        let p = PageId::new(5);
        assert_eq!(pt.translate(p), None);
        assert!(!pt.is_resident(p));
        assert_eq!(pt.install(p, FrameId::new(2)), None);
        assert_eq!(pt.translate(p), Some(FrameId::new(2)));
        assert!(pt.is_resident(p));
        assert_eq!(pt.remove(p), Some(FrameId::new(2)));
        assert_eq!(pt.translate(p), None);
    }

    #[test]
    fn double_install_reports_previous_frame() {
        let mut pt = GpuPageTable::new();
        let p = PageId::new(1);
        pt.install(p, FrameId::new(0));
        assert_eq!(pt.install(p, FrameId::new(9)), Some(FrameId::new(0)));
    }

    #[test]
    fn counters_track_operations() {
        let mut pt = GpuPageTable::new();
        pt.install(PageId::new(1), FrameId::new(0));
        pt.install(PageId::new(2), FrameId::new(1));
        pt.remove(PageId::new(1));
        pt.remove(PageId::new(42)); // no-op
        assert_eq!(pt.installs(), 2);
        assert_eq!(pt.removals(), 1);
        assert_eq!(pt.resident_pages(), 1);
    }

    #[test]
    fn iter_yields_resident_pairs() {
        let mut pt = GpuPageTable::new();
        pt.install(PageId::new(2), FrameId::new(20));
        pt.install(PageId::new(1), FrameId::new(10));
        let pairs: Vec<_> = pt.iter().collect();
        assert_eq!(
            pairs,
            vec![(PageId::new(1), FrameId::new(10)), (PageId::new(2), FrameId::new(20))]
        );
    }
}
