//! The GPU page table: resident virtual-page → device-frame mappings,
//! tracked at two granularities.
//!
//! Base-page entries live in a [`TieredPageMap`] whose region tier is the
//! large-page group, so "is this group fully resident?" — the coalescing
//! precondition — is an O(1) counter read. A fully-resident group can be
//! *promoted* to a large-page mapping (Mosaic-style coalescing); promotion
//! is an overlay over the base entries, which remain the single source of
//! residency truth, so splintering is metadata-only — exactly the property
//! the real designs engineer for with contiguity-preserving allocators.

use batmem_types::dense::{RegionSet, TieredPageMap};
use batmem_types::{FrameId, PageId, RegionId};

/// The GPU-side page table.
///
/// Only **resident** pages have entries; a missing entry is what turns a
/// completed page-table walk into a page fault. The UVM runtime installs an
/// entry when a page's migration finishes and removes it when the page is
/// evicted (§2.2 of the paper).
///
/// Entries live in a dense two-level table (page IDs are dense
/// `0..footprint_pages`), so translate/install/remove are array accesses
/// and per-group residency counts are maintained incrementally.
#[derive(Debug, Clone)]
pub struct GpuPageTable {
    entries: TieredPageMap<FrameId>,
    /// Large-page groups currently promoted to a single large mapping.
    promoted: RegionSet,
    installs: u64,
    removals: u64,
    coalesces: u64,
    splinters: u64,
}

impl Default for GpuPageTable {
    /// Default-geometry table: 32 base pages per large-page group.
    fn default() -> Self {
        Self::with_pages_per_large(32)
    }
}

impl GpuPageTable {
    /// Creates an empty page table with the default (Table 1) geometry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty page table whose large-page groups span
    /// `pages_per_large` base pages.
    pub fn with_pages_per_large(pages_per_large: u64) -> Self {
        Self {
            entries: TieredPageMap::with_pages_per_region(pages_per_large),
            promoted: RegionSet::new(),
            installs: 0,
            removals: 0,
            coalesces: 0,
            splinters: 0,
        }
    }

    /// Base pages per large-page group.
    pub fn pages_per_large(&self) -> u64 {
        self.entries.pages_per_region()
    }

    /// The large-page group containing `page`.
    pub fn group_of(&self, page: PageId) -> RegionId {
        RegionId::new(page.index() / self.entries.pages_per_region())
    }

    /// Looks up the frame backing `page`, if resident.
    pub fn translate(&self, page: PageId) -> Option<FrameId> {
        self.entries.get(page).copied()
    }

    /// Whether `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.entries.contains(page)
    }

    /// Installs a mapping (page migration completed).
    ///
    /// Returns the previous frame if the page was already mapped, which
    /// callers treat as a runtime invariant violation.
    pub fn install(&mut self, page: PageId, frame: FrameId) -> Option<FrameId> {
        self.installs += 1;
        self.entries.insert(page, frame)
    }

    /// Removes a mapping (page evicted), returning the frame it occupied.
    ///
    /// The page's group must not be promoted: evicting below a large
    /// mapping requires splintering it first ([`Self::splinter`]), which
    /// the UVM pipeline does before emitting the eviction.
    pub fn remove(&mut self, page: PageId) -> Option<FrameId> {
        debug_assert!(
            !self.promoted.contains(self.group_of(page)),
            "evicting {page} under a promoted large mapping; splinter first"
        );
        let f = self.entries.remove(page);
        if f.is_some() {
            self.removals += 1;
        }
        f
    }

    /// Resident base pages inside `group` — O(1).
    pub fn group_resident(&self, group: RegionId) -> usize {
        self.entries.region_len(group)
    }

    /// Whether every base page of `group` is resident.
    pub fn group_is_full(&self, group: RegionId) -> bool {
        self.entries.region_is_full(group)
    }

    /// Promotes a fully-resident group to a large-page mapping.
    ///
    /// Returns `false` (and does nothing) if the group is not fully
    /// resident or is already promoted.
    pub fn promote(&mut self, group: RegionId) -> bool {
        if !self.entries.region_is_full(group) || !self.promoted.insert(group) {
            return false;
        }
        self.coalesces += 1;
        true
    }

    /// Demotes a promoted group back to base-page mappings (splintering).
    /// Metadata-only; base entries are untouched. Returns whether the
    /// group was promoted.
    pub fn splinter(&mut self, group: RegionId) -> bool {
        let was = self.promoted.remove(group);
        self.splinters += u64::from(was);
        was
    }

    /// Whether `group` currently has a large-page mapping.
    pub fn is_promoted(&self, group: RegionId) -> bool {
        self.promoted.contains(group)
    }

    /// Whether any group is promoted (the translate fast path's one-branch
    /// guard: when false, the large-page machinery is never consulted).
    #[inline]
    pub fn has_promotions(&self) -> bool {
        !self.promoted.is_empty()
    }

    /// Number of currently promoted groups.
    pub fn promoted_groups(&self) -> usize {
        self.promoted.len()
    }

    /// Total promotions over the run.
    pub fn coalesces(&self) -> u64 {
        self.coalesces
    }

    /// Total splinters over the run.
    pub fn splinters(&self) -> u64 {
        self.splinters
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.entries.len()
    }

    /// Total mappings installed over the run.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Total mappings removed over the run.
    pub fn removals(&self) -> u64 {
        self.removals
    }

    /// Iterates over resident `(page, frame)` pairs in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, FrameId)> + '_ {
        self.entries.iter().map(|(p, &f)| (p, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_translate_remove_round_trip() {
        let mut pt = GpuPageTable::new();
        let p = PageId::new(5);
        assert_eq!(pt.translate(p), None);
        assert!(!pt.is_resident(p));
        assert_eq!(pt.install(p, FrameId::new(2)), None);
        assert_eq!(pt.translate(p), Some(FrameId::new(2)));
        assert!(pt.is_resident(p));
        assert_eq!(pt.remove(p), Some(FrameId::new(2)));
        assert_eq!(pt.translate(p), None);
    }

    #[test]
    fn double_install_reports_previous_frame() {
        let mut pt = GpuPageTable::new();
        let p = PageId::new(1);
        pt.install(p, FrameId::new(0));
        assert_eq!(pt.install(p, FrameId::new(9)), Some(FrameId::new(0)));
    }

    #[test]
    fn counters_track_operations() {
        let mut pt = GpuPageTable::new();
        pt.install(PageId::new(1), FrameId::new(0));
        pt.install(PageId::new(2), FrameId::new(1));
        pt.remove(PageId::new(1));
        pt.remove(PageId::new(42)); // no-op
        assert_eq!(pt.installs(), 2);
        assert_eq!(pt.removals(), 1);
        assert_eq!(pt.resident_pages(), 1);
    }

    #[test]
    fn iter_yields_resident_pairs() {
        let mut pt = GpuPageTable::new();
        pt.install(PageId::new(2), FrameId::new(20));
        pt.install(PageId::new(1), FrameId::new(10));
        let pairs: Vec<_> = pt.iter().collect();
        assert_eq!(
            pairs,
            vec![(PageId::new(1), FrameId::new(10)), (PageId::new(2), FrameId::new(20))]
        );
    }

    #[test]
    fn promotion_requires_full_residency() {
        let mut pt = GpuPageTable::with_pages_per_large(4);
        let g = RegionId::new(0);
        for i in 0..3 {
            pt.install(PageId::new(i), FrameId::new(i as u32));
        }
        assert_eq!(pt.group_resident(g), 3);
        assert!(!pt.group_is_full(g));
        assert!(!pt.promote(g), "partial group must not promote");
        pt.install(PageId::new(3), FrameId::new(3));
        assert!(pt.promote(g));
        assert!(pt.is_promoted(g));
        assert!(!pt.promote(g), "re-promotion is a no-op");
        assert!(pt.has_promotions());
        assert_eq!(pt.promoted_groups(), 1);
        assert_eq!(pt.coalesces(), 1);
    }

    #[test]
    fn splinter_then_eviction_then_repromotion() {
        let mut pt = GpuPageTable::with_pages_per_large(2);
        let g = RegionId::new(1); // pages 2, 3
        pt.install(PageId::new(2), FrameId::new(0));
        pt.install(PageId::new(3), FrameId::new(1));
        assert!(pt.promote(g));
        assert!(pt.splinter(g));
        assert!(!pt.splinter(g), "double splinter is a no-op");
        assert!(!pt.is_promoted(g));
        // Base entries survived the splinter untouched.
        assert_eq!(pt.translate(PageId::new(2)), Some(FrameId::new(0)));
        assert_eq!(pt.remove(PageId::new(3)), Some(FrameId::new(1)));
        assert!(!pt.group_is_full(g));
        // Refill and promote again.
        pt.install(PageId::new(3), FrameId::new(7));
        assert!(pt.promote(g));
        assert_eq!(pt.coalesces(), 2);
        assert_eq!(pt.splinters(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "splinter first")]
    fn removing_under_a_promoted_mapping_panics_in_debug() {
        let mut pt = GpuPageTable::with_pages_per_large(1);
        pt.install(PageId::new(0), FrameId::new(0));
        assert!(pt.promote(RegionId::new(0)));
        let _ = pt.remove(PageId::new(0));
    }
}
