//! Set-associative, LRU translation lookaside buffers.

use batmem_types::{PageId, RegionId};

/// A tag a [`Tlb`] can cache: base pages for the classic TLBs, large-page
/// groups ([`RegionId`]) for the coalesced-mapping TLBs.
pub trait TlbKey: Copy + PartialEq + std::fmt::Debug {
    /// Dense index used for set selection.
    fn cache_index(self) -> u64;
}

impl TlbKey for PageId {
    fn cache_index(self) -> u64 {
        self.index()
    }
}

impl TlbKey for RegionId {
    fn cache_index(self) -> u64 {
        self.index()
    }
}

/// Hit/miss statistics for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries invalidated by shootdowns.
    pub shootdowns: u64,
}

impl TlbStats {
    /// Hit rate in [0, 1]; 0 when no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative TLB with true-LRU replacement within each set.
///
/// A fully associative TLB (the paper's per-SM L1 TLB) is one set whose way
/// count equals the entry count. The tag type defaults to [`PageId`]; the
/// large-page TLBs instantiate it with [`RegionId`] tags.
///
/// # Examples
///
/// ```
/// use batmem_vmem::Tlb;
/// use batmem_types::PageId;
///
/// let mut tlb = Tlb::fully_associative(2);
/// tlb.insert(PageId::new(1));
/// tlb.insert(PageId::new(2));
/// tlb.insert(PageId::new(3)); // evicts page 1 (LRU)
/// assert!(!tlb.lookup(PageId::new(1)));
/// assert!(tlb.lookup(PageId::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb<K: TlbKey = PageId> {
    /// `sets[s]` is an LRU stack: most recently used at the back.
    sets: Vec<Vec<K>>,
    ways: usize,
    stats: TlbStats,
}

impl<K: TlbKey> Tlb<K> {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(entries: u32, ways: u32) -> Self {
        assert!(ways > 0 && entries > 0, "TLB must have entries");
        assert_eq!(entries % ways, 0, "entries must divide into ways");
        let num_sets = (entries / ways) as usize;
        Self {
            sets: vec![Vec::with_capacity(ways as usize); num_sets],
            ways: ways as usize,
            stats: TlbStats::default(),
        }
    }

    /// Creates a fully associative TLB of `entries` entries.
    pub fn fully_associative(entries: u32) -> Self {
        Self::new(entries, entries)
    }

    fn set_of(&self, page: K) -> usize {
        (page.cache_index() % self.sets.len() as u64) as usize
    }

    /// Looks up `page`, updating LRU state. Returns `true` on a hit.
    pub fn lookup(&mut self, page: K) -> bool {
        let s = self.set_of(page);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&p| p == page) {
            let p = set.remove(pos);
            set.push(p);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks for `page` without perturbing LRU state or statistics.
    pub fn contains(&self, page: K) -> bool {
        self.sets[self.set_of(page)].contains(&page)
    }

    /// Inserts `page` as most recently used, evicting the set's LRU entry
    /// if the set is full. Returns the evicted page, if any.
    pub fn insert(&mut self, page: K) -> Option<K> {
        let ways = self.ways;
        let s = self.set_of(page);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&p| p == page) {
            let p = set.remove(pos);
            set.push(p);
            return None;
        }
        let victim = if set.len() == ways { Some(set.remove(0)) } else { None };
        set.push(page);
        victim
    }

    /// Invalidates `page` (TLB shootdown on eviction). Returns whether the
    /// page was present.
    pub fn invalidate(&mut self, page: K) -> bool {
        let s = self.set_of(page);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&p| p == page) {
            set.remove(pos);
            self.stats.shootdowns += 1;
            true
        } else {
            false
        }
    }

    /// Current number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = Tlb::fully_associative(3);
        t.insert(p(1));
        t.insert(p(2));
        t.insert(p(3));
        assert!(t.lookup(p(1))); // 1 becomes MRU; LRU is now 2
        let evicted = t.insert(p(4));
        assert_eq!(evicted, Some(p(2)));
        assert!(t.contains(p(1)) && t.contains(p(3)) && t.contains(p(4)));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut t = Tlb::fully_associative(2);
        t.insert(p(1));
        t.insert(p(2));
        assert_eq!(t.insert(p(1)), None); // refresh
        assert_eq!(t.insert(p(3)), Some(p(2)));
    }

    #[test]
    fn set_mapping_isolates_conflicts() {
        // 4 entries, 2 ways -> 2 sets. Pages 0,2,4 map to set 0; 1,3 to set 1.
        let mut t = Tlb::new(4, 2);
        t.insert(p(0));
        t.insert(p(2));
        t.insert(p(1));
        let evicted = t.insert(p(4)); // set 0 overflows
        assert_eq!(evicted, Some(p(0)));
        assert!(t.contains(p(1))); // other set untouched
    }

    #[test]
    fn stats_count_hits_misses_shootdowns() {
        let mut t = Tlb::fully_associative(2);
        assert!(!t.lookup(p(9)));
        t.insert(p(9));
        assert!(t.lookup(p(9)));
        t.invalidate(p(9));
        assert!(!t.lookup(p(9)));
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.shootdowns, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_absent_is_noop() {
        let mut t = Tlb::fully_associative(2);
        assert!(!t.invalidate(p(5)));
        assert_eq!(t.stats().shootdowns, 0);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut t = Tlb::new(8, 4);
        for i in 0..100 {
            t.insert(p(i));
            assert!(t.occupancy() <= 8);
        }
    }

    #[test]
    #[should_panic(expected = "entries must divide")]
    fn bad_geometry_panics() {
        let _: Tlb = Tlb::new(10, 4);
    }

    #[test]
    fn region_keyed_tlb_works_identically() {
        let mut t: Tlb<RegionId> = Tlb::fully_associative(2);
        t.insert(RegionId::new(1));
        t.insert(RegionId::new(2));
        assert_eq!(t.insert(RegionId::new(3)), Some(RegionId::new(1)));
        assert!(t.lookup(RegionId::new(2)));
        assert!(t.invalidate(RegionId::new(2)));
        assert_eq!(t.stats().shootdowns, 1);
    }
}
