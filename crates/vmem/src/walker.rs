//! The shared, highly threaded page-table walker.
//!
//! GPUs access an order of magnitude more pages than CPUs; the paper's
//! simulator therefore uses the design of Power et al. (HPCA'14): a single
//! walker shared by all SMs that sustains up to 64 concurrent walks, plus a
//! page-walk cache (Barr et al., ISCA'10) exploiting the temporal locality
//! of upper-level page-table entries.
//!
//! The walker is modeled as a bank of walk slots: a walk occupies the
//! earliest-available slot, so requests beyond the concurrency limit queue
//! and their latency includes the queueing delay.

use crate::tlb::Tlb;
use batmem_types::{Cycle, PageId};

/// The shared page-table walker.
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    /// Completion time of the walk occupying each slot.
    slots: Vec<Cycle>,
    walk_latency: Cycle,
    pwc_miss_penalty: Cycle,
    /// Page-walk cache over upper-level PTE groups, reusing the TLB
    /// structure (fully associative, LRU).
    pwc: Tlb,
    /// Pages covered by one upper-level PTE group: a 4 KB page-table page
    /// holds 512 PTEs.
    pwc_group_pages: u64,
    walks: u64,
    queued_walks: u64,
    pwc_hits: u64,
    large_walks: u64,
}

impl PageTableWalker {
    /// Creates a walker with `threads` concurrent walk slots.
    ///
    /// `walk_latency` is the latency of a walk whose upper levels hit the
    /// page-walk cache; a PWC miss adds `pwc_miss_penalty`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `pwc_entries` is zero.
    pub fn new(threads: u32, walk_latency: Cycle, pwc_miss_penalty: Cycle, pwc_entries: u32) -> Self {
        assert!(threads > 0, "walker needs at least one thread");
        Self {
            slots: vec![0; threads as usize],
            walk_latency,
            pwc_miss_penalty,
            pwc: Tlb::fully_associative(pwc_entries),
            pwc_group_pages: 512,
            walks: 0,
            queued_walks: 0,
            pwc_hits: 0,
            large_walks: 0,
        }
    }

    /// Claims the earliest-available walk slot at `now` for a walk of
    /// `latency` cycles; returns its completion time.
    fn claim_slot(&mut self, now: Cycle, latency: Cycle) -> Cycle {
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &free_at)| free_at)
            .map(|(i, _)| i)
            .expect("walker has slots");
        let start = self.slots[slot].max(now);
        if start > now {
            self.queued_walks += 1;
        }
        let done = start + latency;
        self.slots[slot] = done;
        done
    }

    /// Begins a walk for `page` at time `now`; returns the walk's
    /// completion time (≥ `now + walk_latency`, later under contention or
    /// on a page-walk-cache miss).
    pub fn begin_walk(&mut self, now: Cycle, page: PageId) -> Cycle {
        self.walks += 1;
        let group = PageId::new(page.index() / self.pwc_group_pages);
        let latency = if self.pwc.lookup(group) {
            self.pwc_hits += 1;
            self.walk_latency
        } else {
            self.pwc.insert(group);
            self.walk_latency + self.pwc_miss_penalty
        };
        self.claim_slot(now, latency)
    }

    /// Begins a walk that resolves at a **large-page** PTE: one level
    /// shorter than a base walk and never reliant on the leaf-level page
    /// walk cache, so it costs half the base walk latency. Competes for
    /// the same walk slots. Returns the walk's completion time.
    pub fn begin_large_walk(&mut self, now: Cycle) -> Cycle {
        self.large_walks += 1;
        self.claim_slot(now, (self.walk_latency / 2).max(1))
    }

    /// Total walks issued.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Walks that had to queue behind a busy walker.
    pub fn queued_walks(&self) -> u64 {
        self.queued_walks
    }

    /// Walks whose upper levels hit the page-walk cache.
    pub fn pwc_hits(&self) -> u64 {
        self.pwc_hits
    }

    /// Walks that resolved at a large-page PTE.
    pub fn large_walks(&self) -> u64 {
        self.large_walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker(threads: u32) -> PageTableWalker {
        PageTableWalker::new(threads, 200, 100, 16)
    }

    #[test]
    fn first_walk_takes_latency_plus_pwc_miss() {
        let mut w = walker(4);
        let done = w.begin_walk(1000, PageId::new(7));
        assert_eq!(done, 1000 + 200 + 100);
    }

    #[test]
    fn second_walk_same_group_hits_pwc() {
        let mut w = walker(4);
        w.begin_walk(0, PageId::new(7));
        let done = w.begin_walk(1000, PageId::new(8)); // same 512-page group
        assert_eq!(done, 1000 + 200);
        assert_eq!(w.pwc_hits(), 1);
    }

    #[test]
    fn distant_pages_miss_pwc() {
        let mut w = walker(4);
        w.begin_walk(0, PageId::new(0));
        let done = w.begin_walk(1000, PageId::new(512));
        assert_eq!(done, 1000 + 300);
    }

    #[test]
    fn walks_queue_when_all_slots_busy() {
        let mut w = walker(2);
        let a = w.begin_walk(0, PageId::new(0));
        let b = w.begin_walk(0, PageId::new(512));
        // Third walk (same group as first => PWC hit) queues behind the
        // earliest finishing slot.
        let c = w.begin_walk(0, PageId::new(1));
        assert_eq!(a, 300);
        assert_eq!(b, 300);
        assert_eq!(c, 300 + 200);
        assert_eq!(w.queued_walks(), 1);
    }

    #[test]
    fn sixty_four_walkers_absorb_burst() {
        let mut w = walker(64);
        let dones: Vec<_> = (0..64).map(|i| w.begin_walk(0, PageId::new(i))).collect();
        // No queueing within the first 64 concurrent walks.
        assert_eq!(w.queued_walks(), 0);
        assert!(dones.iter().all(|&d| d <= 300));
        w.begin_walk(0, PageId::new(64));
        assert_eq!(w.queued_walks(), 1);
    }

    #[test]
    fn counters() {
        let mut w = walker(2);
        w.begin_walk(0, PageId::new(0));
        w.begin_walk(0, PageId::new(1));
        assert_eq!(w.walks(), 2);
    }

    #[test]
    fn large_walks_are_shorter_and_share_slots() {
        let mut w = walker(1);
        // Large walk: half the base latency, no PWC penalty.
        assert_eq!(w.begin_large_walk(0), 100);
        assert_eq!(w.large_walks(), 1);
        assert_eq!(w.walks(), 0, "large walks are counted separately");
        // A base walk queues behind the large walk's slot.
        let done = w.begin_walk(0, PageId::new(0));
        assert_eq!(done, 100 + 300);
        assert_eq!(w.queued_walks(), 1);
    }
}
