//! Property-based tests for the virtual-memory substrate.

use batmem_types::{FrameId, PageId, RegionId};
use batmem_vmem::{GpuPageTable, Tlb};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum PtOp {
    Install(u64, u32),
    Remove(u64),
    Translate(u64),
}

/// Two-level op mix: base installs/removes plus group promote/splinter.
/// Removes mirror the UVM pipeline's splinter-before-evict discipline.
#[derive(Debug, Clone)]
enum TierOp {
    Install(u64, u32),
    Remove(u64),
    Promote(u64),
    Splinter(u64),
    Translate(u64),
}

/// 8 groups of 4 pages: small enough that promote/splinter cycles are
/// frequent, large enough that partially-resident groups occur.
const PAGES_PER_LARGE: u64 = 4;
const TIER_PAGES: u64 = 32;

fn tier_ops() -> impl Strategy<Value = Vec<TierOp>> {
    let groups = TIER_PAGES / PAGES_PER_LARGE;
    prop::collection::vec(
        // The in-tree proptest subset has no weighted prop_oneof; the
        // double Install arm skews the mix toward filling groups so
        // promotions actually fire.
        prop_oneof![
            (0u64..TIER_PAGES, 0u32..64).prop_map(|(p, f)| TierOp::Install(p, f)),
            (0u64..TIER_PAGES, 0u32..64).prop_map(|(p, f)| TierOp::Install(p, f)),
            (0u64..TIER_PAGES).prop_map(TierOp::Remove),
            (0u64..groups).prop_map(TierOp::Promote),
            (0u64..groups).prop_map(TierOp::Splinter),
            (0u64..TIER_PAGES).prop_map(TierOp::Translate),
        ],
        0..300,
    )
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32, 0u32..64).prop_map(|(p, f)| PtOp::Install(p, f)),
            (0u64..32).prop_map(PtOp::Remove),
            (0u64..32).prop_map(PtOp::Translate),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn page_table_matches_btreemap_model(ops in pt_ops()) {
        let mut pt = GpuPageTable::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                PtOp::Install(p, f) => {
                    let got = pt.install(PageId::new(p), FrameId::new(f));
                    let want = model.insert(p, f);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                PtOp::Remove(p) => {
                    let got = pt.remove(PageId::new(p));
                    let want = model.remove(&p);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                PtOp::Translate(p) => {
                    let got = pt.translate(PageId::new(p));
                    let want = model.get(&p).copied();
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
            }
            prop_assert_eq!(pt.resident_pages(), model.len());
        }
    }

    /// Promotion is an overlay: through arbitrary coalesce -> splinter ->
    /// coalesce cycles, translation and residency must stay byte-identical
    /// to a flat single-granularity page table (the `BTreeMap` oracle),
    /// and a promoted group must always be fully resident.
    #[test]
    fn two_level_table_matches_flat_oracle_through_promote_cycles(ops in tier_ops()) {
        let mut pt = GpuPageTable::with_pages_per_large(PAGES_PER_LARGE);
        let mut flat: BTreeMap<u64, u32> = BTreeMap::new();
        let mut promoted: BTreeSet<u64> = BTreeSet::new();
        let group_full =
            |flat: &BTreeMap<u64, u32>, g: u64| (0..PAGES_PER_LARGE).all(|i| {
                flat.contains_key(&(g * PAGES_PER_LARGE + i))
            });
        for op in ops {
            match op {
                TierOp::Install(p, f) => {
                    let got = pt.install(PageId::new(p), FrameId::new(f));
                    let want = flat.insert(p, f);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                TierOp::Remove(p) => {
                    // Splinter-before-evict, exactly as the UVM pipeline
                    // orders its outputs.
                    let g = p / PAGES_PER_LARGE;
                    if promoted.remove(&g) {
                        prop_assert!(pt.splinter(RegionId::new(g)));
                    }
                    let got = pt.remove(PageId::new(p));
                    let want = flat.remove(&p);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                TierOp::Promote(g) => {
                    let want = group_full(&flat, g) && promoted.insert(g);
                    prop_assert_eq!(pt.promote(RegionId::new(g)), want);
                }
                TierOp::Splinter(g) => {
                    let want = promoted.remove(&g);
                    prop_assert_eq!(pt.splinter(RegionId::new(g)), want);
                }
                TierOp::Translate(p) => {
                    let got = pt.translate(PageId::new(p));
                    let want = flat.get(&p).copied();
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
            }
            // The overlay never perturbs the flat truth...
            prop_assert_eq!(pt.resident_pages(), flat.len());
            prop_assert_eq!(pt.has_promotions(), !promoted.is_empty());
            prop_assert_eq!(pt.promoted_groups(), promoted.len());
            // ...and every promoted group is fully resident (the
            // invariant `Mmu::translate` leans on for its stale check).
            for &g in &promoted {
                prop_assert!(pt.group_is_full(RegionId::new(g)));
            }
        }
    }

    #[test]
    fn fully_associative_tlb_is_an_lru_stack(
        accesses in prop::collection::vec(0u64..16, 1..100),
        capacity in 1u32..8,
    ) {
        let mut tlb = Tlb::fully_associative(capacity);
        let mut stack: Vec<u64> = Vec::new(); // MRU at back
        for &p in &accesses {
            tlb.insert(PageId::new(p));
            stack.retain(|&x| x != p);
            stack.push(p);
            if stack.len() > capacity as usize {
                stack.remove(0);
            }
            // Contents must equal the model's.
            for &x in &stack {
                prop_assert!(tlb.contains(PageId::new(x)), "missing {}", x);
            }
            prop_assert_eq!(tlb.occupancy(), stack.len());
        }
    }

    #[test]
    fn tlb_occupancy_never_exceeds_capacity(
        accesses in prop::collection::vec(0u64..1000, 1..300),
        ways in 1u32..5,
        sets_log in 0u32..4,
    ) {
        let entries = ways << sets_log;
        let mut tlb = Tlb::new(entries, ways);
        for &p in &accesses {
            tlb.insert(PageId::new(p));
            prop_assert!(tlb.occupancy() <= entries as usize);
        }
    }

    #[test]
    fn tlb_lookup_after_insert_hits_until_evicted(
        pages in prop::collection::vec(0u64..50, 1..100),
    ) {
        let mut tlb = Tlb::new(16, 4);
        for &p in &pages {
            tlb.insert(PageId::new(p));
            prop_assert!(tlb.lookup(PageId::new(p)), "just-inserted page missed");
        }
    }

    #[test]
    fn invalidate_removes_exactly_that_page(
        pages in prop::collection::vec(0u64..20, 1..50),
        victim in 0u64..20,
    ) {
        let mut tlb = Tlb::fully_associative(64);
        for &p in &pages {
            tlb.insert(PageId::new(p));
        }
        let present_before = tlb.contains(PageId::new(victim));
        let removed = tlb.invalidate(PageId::new(victim));
        prop_assert_eq!(removed, present_before);
        prop_assert!(!tlb.contains(PageId::new(victim)));
        for &p in &pages {
            if p != victim {
                prop_assert!(tlb.contains(PageId::new(p)));
            }
        }
    }
}
