//! Property-based tests for the virtual-memory substrate.

use batmem_types::{FrameId, PageId};
use batmem_vmem::{GpuPageTable, Tlb};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum PtOp {
    Install(u64, u32),
    Remove(u64),
    Translate(u64),
}

fn pt_ops() -> impl Strategy<Value = Vec<PtOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32, 0u32..64).prop_map(|(p, f)| PtOp::Install(p, f)),
            (0u64..32).prop_map(PtOp::Remove),
            (0u64..32).prop_map(PtOp::Translate),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn page_table_matches_btreemap_model(ops in pt_ops()) {
        let mut pt = GpuPageTable::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                PtOp::Install(p, f) => {
                    let got = pt.install(PageId::new(p), FrameId::new(f));
                    let want = model.insert(p, f);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                PtOp::Remove(p) => {
                    let got = pt.remove(PageId::new(p));
                    let want = model.remove(&p);
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
                PtOp::Translate(p) => {
                    let got = pt.translate(PageId::new(p));
                    let want = model.get(&p).copied();
                    prop_assert_eq!(got.map(|x| x.index()), want);
                }
            }
            prop_assert_eq!(pt.resident_pages(), model.len());
        }
    }

    #[test]
    fn fully_associative_tlb_is_an_lru_stack(
        accesses in prop::collection::vec(0u64..16, 1..100),
        capacity in 1u32..8,
    ) {
        let mut tlb = Tlb::fully_associative(capacity);
        let mut stack: Vec<u64> = Vec::new(); // MRU at back
        for &p in &accesses {
            tlb.insert(PageId::new(p));
            stack.retain(|&x| x != p);
            stack.push(p);
            if stack.len() > capacity as usize {
                stack.remove(0);
            }
            // Contents must equal the model's.
            for &x in &stack {
                prop_assert!(tlb.contains(PageId::new(x)), "missing {}", x);
            }
            prop_assert_eq!(tlb.occupancy(), stack.len());
        }
    }

    #[test]
    fn tlb_occupancy_never_exceeds_capacity(
        accesses in prop::collection::vec(0u64..1000, 1..300),
        ways in 1u32..5,
        sets_log in 0u32..4,
    ) {
        let entries = ways << sets_log;
        let mut tlb = Tlb::new(entries, ways);
        for &p in &accesses {
            tlb.insert(PageId::new(p));
            prop_assert!(tlb.occupancy() <= entries as usize);
        }
    }

    #[test]
    fn tlb_lookup_after_insert_hits_until_evicted(
        pages in prop::collection::vec(0u64..50, 1..100),
    ) {
        let mut tlb = Tlb::new(16, 4);
        for &p in &pages {
            tlb.insert(PageId::new(p));
            prop_assert!(tlb.lookup(PageId::new(p)), "just-inserted page missed");
        }
    }

    #[test]
    fn invalidate_removes_exactly_that_page(
        pages in prop::collection::vec(0u64..20, 1..50),
        victim in 0u64..20,
    ) {
        let mut tlb = Tlb::fully_associative(64);
        for &p in &pages {
            tlb.insert(PageId::new(p));
        }
        let present_before = tlb.contains(PageId::new(victim));
        let removed = tlb.invalidate(PageId::new(victim));
        prop_assert_eq!(removed, present_before);
        prop_assert!(!tlb.contains(PageId::new(victim)));
        for &p in &pages {
            if p != victim {
                prop_assert!(tlb.contains(PageId::new(p)));
            }
        }
    }
}
