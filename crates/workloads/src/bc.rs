//! Betweenness centrality (Brandes, single source).
//!
//! Two phases, both level-synchronous:
//!
//! * **forward**: BFS expansion accumulating shortest-path counts (sigma);
//! * **backward**: dependency accumulation (delta) walking the levels in
//!   reverse.
//!
//! Each phase launches one kernel per level, so BC's kernel sequence is the
//! longest of the suite and revisits the same pages from both directions —
//! the behaviour that makes it eviction-sensitive in the paper.

use crate::common::{thread_centric_spec, warp_item_range, ArrayOptions, GraphArrays};
use crate::stream::StreamBuilder;
use batmem_graph::{alg, Csr};
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>,
    levels: Vec<u32>,
    frontiers: Vec<Vec<u32>>,
    arrays: GraphArrays,
}

/// The BC workload.
#[derive(Debug, Clone)]
pub struct Bc {
    shared: Arc<Shared>,
}

impl Bc {
    /// Builds BC over `graph` from the maximum-degree source.
    pub fn new(graph: Arc<Csr>) -> Self {
        let src = graph.max_degree_vertex();
        let res = alg::betweenness(&graph, src);
        // vprops: [0] levels, [1] sigma, [2] delta.
        let arrays = GraphArrays::new(&graph, ArrayOptions { weights: false, coo: false, vprops: 3 });
        Self {
            shared: Arc::new(Shared {
                graph,
                levels: res.forward.levels,
                frontiers: res.forward.frontiers,
                arrays,
            }),
        }
    }

    fn depth(&self) -> usize {
        self.shared.frontiers.len()
    }
}

impl Workload for Bc {
    fn name(&self) -> String {
        "BC".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        // Forward sweep + backward sweep.
        (self.depth() * 2) as u32
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        let d = self.depth();
        assert!(k.index() < d * 2, "kernel {k} out of range");
        let (phase, level) = if k.index() < d {
            (Phase::Forward, k.index() as u32)
        } else {
            // Backward walks levels deepest-first.
            (Phase::Backward, (2 * d - 1 - k.index()) as u32)
        };
        Box::new(BcKernel { shared: Arc::clone(&self.shared), phase, level })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Forward,
    Backward,
}

struct BcKernel {
    shared: Arc<Shared>,
    phase: Phase,
    level: u32,
}

impl Kernel for BcKernel {
    fn spec(&self) -> KernelSpec {
        thread_centric_spec(u64::from(self.shared.graph.num_vertices()))
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        let total = u64::from(sh.graph.num_vertices());
        let (s, e) = warp_item_range(block, warp_in_block, total);
        if s >= e {
            return b.build();
        }
        b.load_seq(&sh.arrays.vprops[0], s, e - s);
        b.compute(4);
        for v in s..e {
            if sh.levels[v as usize] != self.level {
                continue;
            }
            let v = v as u32;
            let deg = sh.graph.degree(v);
            b.load_seq(&sh.arrays.offsets, u64::from(v), 2);
            if deg == 0 {
                continue;
            }
            b.load_seq(&sh.arrays.edges, sh.graph.edge_start(v), u64::from(deg));
            let nbrs = sh.graph.neighbors(v);
            let children: Vec<u64> = nbrs
                .iter()
                .filter(|&&n| sh.levels[n as usize] == self.level + 1)
                .map(|&n| u64::from(n))
                .collect();
            match self.phase {
                Phase::Forward => {
                    // sigma[child] += sigma[v]: gather levels, scatter sigma.
                    b.load_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
                    if !children.is_empty() {
                        b.load_gather(&sh.arrays.vprops[1], children.iter().copied());
                        b.store_gather(&sh.arrays.vprops[1], children.iter().copied());
                    }
                }
                Phase::Backward => {
                    // delta[v] += sigma[v]/sigma[c] * (1 + delta[c]).
                    if !children.is_empty() {
                        b.load_gather(&sh.arrays.vprops[1], children.iter().copied());
                        b.load_gather(&sh.arrays.vprops[2], children.iter().copied());
                        b.store_seq(&sh.arrays.vprops[2], u64::from(v), 1);
                    }
                }
            }
            b.compute(2 + deg / 8);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn kernel_count_is_twice_depth() {
        let w = Bc::new(Arc::new(gen::rmat(7, 6, 8)));
        assert_eq!(w.num_kernels() as usize, w.depth() * 2);
    }

    #[test]
    fn backward_levels_mirror_forward() {
        let w = Bc::new(Arc::new(gen::rmat(7, 6, 8)));
        assert_backward_first_is_deepest(&w);
    }

    fn assert_backward_first_is_deepest(w: &Bc) {
        let d = w.depth();
        // The deepest frontier is usually small; the first backward kernel
        // and the last forward kernel must process the same level, which we
        // verify by comparing their generated op counts.
        let ops_of = |k: u32| {
            let kernel = w.kernel(KernelId::new(k));
            let spec = kernel.spec();
            let mut n = 0u64;
            for blk in 0..spec.num_blocks {
                for warp in 0..8 {
                    let mut s = kernel.warp_stream(BlockId::new(blk), warp);
                    while s.next_op().is_some() {
                        n += 1;
                    }
                }
            }
            n
        };
        let last_forward = ops_of(d as u32 - 1);
        let first_backward = ops_of(d as u32);
        // Same level scanned; backward does strictly less work per vertex
        // at the deepest level (no children).
        assert!(first_backward <= last_forward);
    }

    #[test]
    fn forward_writes_sigma_backward_writes_delta() {
        let w = Bc::new(Arc::new(gen::rmat(7, 6, 8)));
        let sigma = w.shared.arrays.vprops[1];
        let delta = w.shared.arrays.vprops[2];
        let stores_to = |k: u32, arr: &crate::layout::ArrayRef| {
            let kernel = w.kernel(KernelId::new(k));
            let spec = kernel.spec();
            let mut found = false;
            for blk in 0..spec.num_blocks {
                for warp in 0..8 {
                    let mut s = kernel.warp_stream(BlockId::new(blk), warp);
                    while let Some(op) = s.next_op() {
                        if let batmem_sim::ops::WarpOp::Store(addrs) = &op {
                            if addrs.iter().any(|a| {
                                a.raw() >= arr.base().raw()
                                    && a.raw() < arr.base().raw() + arr.size_bytes()
                            }) {
                                found = true;
                            }
                        }
                    }
                }
            }
            found
        };
        assert!(stores_to(0, &sigma), "forward kernel 0 never wrote sigma");
        let d = w.depth() as u32;
        // A mid-depth backward kernel writes delta.
        assert!(stores_to(2 * d - 1, &delta) || stores_to(d, &delta));
    }
}
