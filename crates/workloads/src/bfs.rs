//! The five GraphBIG breadth-first-search variants.
//!
//! All variants compute the same BFS (host-verified via
//! [`batmem_graph::alg::bfs`]) but with different thread-to-data mappings,
//! which gives them very different divergence and paging behaviour:
//!
//! * **TTC** (topological thread-centric): every kernel scans all vertices;
//!   each *thread* owns one vertex and expands it if it is on the frontier.
//! * **TA** (topological atomic): TTC plus atomic updates to a global
//!   frontier counter (a hot page).
//! * **TF** (topological frontier): kernels launch over a compacted
//!   frontier worklist; offset reads become divergent gathers.
//! * **TWC** (topological warp-centric): each *warp* owns one vertex and
//!   expands its neighbor list cooperatively (coalesced edge reads).
//! * **DWC** (data-warp-centric): warps stride the raw **edge list** (COO),
//!   reading both endpoints' levels — the paper's most divergent variant,
//!   which thrashes pages constantly (§5.2).

use crate::common::{
    thread_centric_spec, warp_centric_spec, warp_item, warp_item_range, ArrayOptions, GraphArrays,
};
use crate::stream::StreamBuilder;
use batmem_graph::{alg, Csr};
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::collections::HashMap;
use std::sync::Arc;

/// Which BFS implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsVariant {
    /// Data-warp-centric (edge-list strided).
    Dwc,
    /// Topological-atomic.
    Ta,
    /// Topological-frontier.
    Tf,
    /// Topological-thread-centric.
    Ttc,
    /// Topological-warp-centric.
    Twc,
}

impl BfsVariant {
    /// The workload's display name (matches the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            BfsVariant::Dwc => "BFS-DWC",
            BfsVariant::Ta => "BFS-TA",
            BfsVariant::Tf => "BFS-TF",
            BfsVariant::Ttc => "BFS-TTC",
            BfsVariant::Twc => "BFS-TWC",
        }
    }
}

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>,
    levels: Vec<u32>,
    frontiers: Vec<Vec<u32>>,
    arrays: GraphArrays,
    /// Per-edge source vertices (DWC only).
    coo_src: Vec<u32>,
}

/// A BFS workload instance.
#[derive(Debug, Clone)]
pub struct Bfs {
    variant: BfsVariant,
    shared: Arc<Shared>,
}

impl Bfs {
    /// Builds the BFS variant over `graph`, rooted at the maximum-degree
    /// vertex (the usual GraphBIG convention for power-law inputs).
    pub fn new(variant: BfsVariant, graph: Arc<Csr>) -> Self {
        let src = graph.max_degree_vertex();
        let res = alg::bfs(&graph, src);
        let opts = match variant {
            BfsVariant::Dwc => ArrayOptions { weights: false, coo: true, vprops: 1 },
            BfsVariant::Tf => ArrayOptions { weights: false, coo: false, vprops: 2 },
            _ => ArrayOptions { weights: false, coo: false, vprops: 1 },
        };
        let arrays = GraphArrays::new(&graph, opts);
        let coo_src = if variant == BfsVariant::Dwc {
            let mut v = Vec::with_capacity(graph.num_edges() as usize);
            for s in 0..graph.num_vertices() {
                v.extend(std::iter::repeat_n(s, graph.degree(s) as usize));
            }
            v
        } else {
            Vec::new()
        };
        Self {
            variant,
            shared: Arc::new(Shared {
                graph,
                levels: res.levels,
                frontiers: res.frontiers,
                arrays,
                coo_src,
            }),
        }
    }

    /// The variant being modeled.
    pub fn variant(&self) -> BfsVariant {
        self.variant
    }
}

impl Workload for Bfs {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        self.shared.frontiers.len() as u32
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.shared.frontiers.len(), "kernel {k} out of range");
        let level = k.index() as u32;
        let next_pos = if self.variant == BfsVariant::Tf {
            match self.shared.frontiers.get(k.index() + 1) {
                Some(next) => {
                    next.iter().enumerate().map(|(i, &v)| (v, i as u64)).collect()
                }
                None => HashMap::new(),
            }
        } else {
            HashMap::new()
        };
        Box::new(BfsKernel {
            variant: self.variant,
            shared: Arc::clone(&self.shared),
            level,
            next_pos: Arc::new(next_pos),
        })
    }
}

struct BfsKernel {
    variant: BfsVariant,
    shared: Arc<Shared>,
    level: u32,
    /// Position of each next-frontier vertex in the output worklist (TF).
    next_pos: Arc<HashMap<u32, u64>>,
}

impl BfsKernel {
    /// Emits the expansion of vertex `v`: edge reads, neighbor-level
    /// gathers, and stores for newly discovered vertices.
    fn expand(&self, b: &mut StreamBuilder, v: u32, levels_arr: usize) {
        let sh = &self.shared;
        let deg = sh.graph.degree(v);
        b.load_seq(&sh.arrays.offsets, u64::from(v), 2);
        if deg == 0 {
            return;
        }
        let start = sh.graph.edge_start(v);
        b.load_seq(&sh.arrays.edges, start, u64::from(deg));
        let nbrs = sh.graph.neighbors(v);
        b.load_gather(&sh.arrays.vprops[levels_arr], nbrs.iter().map(|&n| u64::from(n)));
        // Newly discovered vertices; an empty gather coalesces to no ops,
        // so no emptiness check (or materialized list) is needed.
        let disc = nbrs
            .iter()
            .filter(|&&n| sh.levels[n as usize] == self.level + 1)
            .map(|&n| u64::from(n));
        b.store_gather(&sh.arrays.vprops[levels_arr], disc);
        b.compute(2 + deg / 8);
    }
}

impl Kernel for BfsKernel {
    fn spec(&self) -> KernelSpec {
        let sh = &self.shared;
        let v = u64::from(sh.graph.num_vertices());
        match self.variant {
            BfsVariant::Ttc | BfsVariant::Ta => thread_centric_spec(v),
            BfsVariant::Twc => warp_centric_spec(v, 32),
            BfsVariant::Tf => {
                thread_centric_spec(sh.frontiers[self.level as usize].len() as u64)
            }
            // Each DWC thread strides 4 edges.
            BfsVariant::Dwc => thread_centric_spec(sh.graph.num_edges().div_ceil(4)),
        }
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        match self.variant {
            BfsVariant::Ttc | BfsVariant::Ta => {
                let total = u64::from(sh.graph.num_vertices());
                let (s, e) = warp_item_range(block, warp_in_block, total);
                if s < e {
                    b.load_seq(&sh.arrays.vprops[0], s, e - s);
                    b.compute(4);
                    let mut discovered_any = false;
                    for v in s..e {
                        if sh.levels[v as usize] == self.level {
                            self.expand(&mut b, v as u32, 0);
                            discovered_any = true;
                        }
                    }
                    if self.variant == BfsVariant::Ta && discovered_any {
                        // Atomic bump of the global frontier counter: a hot
                        // line shared by every warp in the grid.
                        b.store_seq(&sh.arrays.counters, 0, 1);
                    }
                }
            }
            BfsVariant::Twc => {
                let total = u64::from(sh.graph.num_vertices());
                if let Some(v) = warp_item(block, warp_in_block, 32, total) {
                    b.load_seq(&sh.arrays.vprops[0], v, 1);
                    b.compute(4);
                    if sh.levels[v as usize] == self.level {
                        self.expand(&mut b, v as u32, 0);
                    }
                }
            }
            BfsVariant::Tf => {
                let frontier = &sh.frontiers[self.level as usize];
                let (s, e) = warp_item_range(block, warp_in_block, frontier.len() as u64);
                if s < e {
                    // Ping-pong worklists: even levels read `worklist`,
                    // odd levels read vprops[1].
                    let (cur, next) = if self.level.is_multiple_of(2) {
                        (&sh.arrays.worklist, &sh.arrays.vprops[1])
                    } else {
                        (&sh.arrays.vprops[1], &sh.arrays.worklist)
                    };
                    b.load_seq(cur, s, e - s);
                    let verts = &frontier[s as usize..e as usize];
                    // Frontier vertices are scattered: offset reads diverge.
                    b.load_gather(&sh.arrays.offsets, verts.iter().map(|&v| u64::from(v)));
                    b.compute(4);
                    let mut appended = Vec::new();
                    for &v in verts {
                        let deg = sh.graph.degree(v);
                        if deg == 0 {
                            continue;
                        }
                        b.load_seq(&sh.arrays.edges, sh.graph.edge_start(v), u64::from(deg));
                        let nbrs = sh.graph.neighbors(v);
                        b.load_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
                        for &n in nbrs {
                            if let Some(&pos) = self.next_pos.get(&n) {
                                appended.push(pos);
                            }
                        }
                        b.compute(2 + deg / 8);
                    }
                    if !appended.is_empty() {
                        // Atomic index bump, then the scattered appends.
                        b.store_seq(&sh.arrays.counters, 0, 1);
                        b.store_gather(next, appended.iter().copied());
                        b.store_gather(
                            &sh.arrays.vprops[0],
                            appended.iter().map(|&p| {
                                let frontier_next = &sh.frontiers[self.level as usize + 1];
                                u64::from(frontier_next[p as usize])
                            }),
                        );
                    }
                }
            }
            BfsVariant::Dwc => {
                let total_items = sh.graph.num_edges().div_ceil(4);
                let (s, e) = warp_item_range(block, warp_in_block, total_items);
                if s < e {
                    let es = s * 4;
                    let ee = (e * 4).min(sh.graph.num_edges());
                    let n = ee - es;
                    if n > 0 {
                        let coo = sh.arrays.coo_src.as_ref().expect("DWC has COO");
                        b.load_seq(coo, es, n);
                        b.load_seq(&sh.arrays.edges, es, n);
                        b.compute(8);
                        let srcs = &sh.coo_src[es as usize..ee as usize];
                        let dsts = &sh.graph.edges()[es as usize..ee as usize];
                        // Both endpoint gathers are fully divergent.
                        b.load_gather(&sh.arrays.vprops[0], srcs.iter().map(|&v| u64::from(v)));
                        let active: Vec<usize> = (0..srcs.len())
                            .filter(|&i| sh.levels[srcs[i] as usize] == self.level)
                            .collect();
                        if !active.is_empty() {
                            b.load_gather(
                                &sh.arrays.vprops[0],
                                active.iter().map(|&i| u64::from(dsts[i])),
                            );
                            let disc: Vec<u64> = active
                                .iter()
                                .filter(|&&i| sh.levels[dsts[i] as usize] == self.level + 1)
                                .map(|&i| u64::from(dsts[i]))
                                .collect();
                            if !disc.is_empty() {
                                b.store_gather(&sh.arrays.vprops[0], disc.iter().copied());
                            }
                        }
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;
    use batmem_sim::ops::WarpOp;

    fn graph() -> Arc<Csr> {
        Arc::new(gen::rmat(8, 8, 3))
    }

    fn total_ops(w: &dyn Workload) -> (u64, u64) {
        let mut mem = 0u64;
        let mut txns = 0u64;
        for k in 0..w.num_kernels() {
            let kernel = w.kernel(KernelId::new(k));
            let spec = kernel.spec();
            for blk in 0..spec.num_blocks {
                for warp in 0..spec.warps_per_block(32) {
                    let mut s = kernel.warp_stream(BlockId::new(blk), warp as u16);
                    while let Some(op) = s.next_op() {
                        if op.is_mem() {
                            mem += 1;
                            txns += op.addrs().len() as u64;
                        }
                    }
                }
            }
        }
        (mem, txns)
    }

    #[test]
    fn all_variants_produce_work() {
        for v in [BfsVariant::Dwc, BfsVariant::Ta, BfsVariant::Tf, BfsVariant::Ttc, BfsVariant::Twc] {
            let w = Bfs::new(v, graph());
            assert!(w.num_kernels() > 1, "{}: BFS should take multiple levels", w.name());
            let (mem, _) = total_ops(&w);
            assert!(mem > 0, "{} generated no memory ops", w.name());
        }
    }

    #[test]
    fn ttc_scans_every_vertex_every_kernel() {
        let g = graph();
        let w = Bfs::new(BfsVariant::Ttc, Arc::clone(&g));
        let kernel = w.kernel(KernelId::new(0));
        // Grid covers all vertices.
        assert_eq!(kernel.spec().num_blocks, g.num_vertices().div_ceil(256));
    }

    #[test]
    fn tf_grid_tracks_frontier_size() {
        let g = graph();
        let w = Bfs::new(BfsVariant::Tf, Arc::clone(&g));
        // Level 0's frontier is just the source: one block.
        assert_eq!(w.kernel(KernelId::new(0)).spec().num_blocks, 1);
    }

    #[test]
    fn twc_maps_one_vertex_per_warp() {
        let g = graph();
        let w = Bfs::new(BfsVariant::Twc, Arc::clone(&g));
        let spec = w.kernel(KernelId::new(0)).spec();
        assert_eq!(spec.num_blocks, g.num_vertices().div_ceil(8));
    }

    #[test]
    fn dwc_is_most_divergent() {
        // DWC's transactions-per-op ratio should exceed TTC's: it gathers
        // endpoint levels over the raw edge list.
        let g = graph();
        let (ttc_ops, ttc_txn) = total_ops(&Bfs::new(BfsVariant::Ttc, Arc::clone(&g)));
        let (dwc_ops, dwc_txn) = total_ops(&Bfs::new(BfsVariant::Dwc, Arc::clone(&g)));
        let ttc_ratio = ttc_txn as f64 / ttc_ops as f64;
        let dwc_ratio = dwc_txn as f64 / dwc_ops as f64;
        assert!(dwc_ratio > ttc_ratio, "dwc {dwc_ratio:.2} <= ttc {ttc_ratio:.2}");
    }

    #[test]
    fn ta_touches_the_counter_page() {
        let g = graph();
        let w = Bfs::new(BfsVariant::Ta, Arc::clone(&g));
        let counters_base = {
            // Rebuild layout to find the counters array address.
            let arrays = GraphArrays::new(&g, ArrayOptions { weights: false, coo: false, vprops: 1 });
            arrays.counters.base()
        };
        let mut touched = false;
        let kernel = w.kernel(KernelId::new(0));
        let spec = kernel.spec();
        'outer: for blk in 0..spec.num_blocks {
            for warp in 0..8 {
                let mut s = kernel.warp_stream(BlockId::new(blk), warp);
                while let Some(op) = s.next_op() {
                    if let WarpOp::Store(addrs) = &op {
                        if addrs.contains(&counters_base) {
                            touched = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(touched, "TA never stored to the atomic counter");
    }

    #[test]
    fn streams_are_deterministic() {
        let g = graph();
        let w1 = Bfs::new(BfsVariant::Ttc, Arc::clone(&g));
        let w2 = Bfs::new(BfsVariant::Ttc, Arc::clone(&g));
        assert_eq!(total_ops(&w1), total_ops(&w2));
    }

    #[test]
    fn footprint_includes_coo_only_for_dwc() {
        let g = graph();
        let plain = Bfs::new(BfsVariant::Ttc, Arc::clone(&g)).footprint_bytes();
        let dwc = Bfs::new(BfsVariant::Dwc, Arc::clone(&g)).footprint_bytes();
        assert!(dwc > plain);
    }
}
