//! Shared scaffolding for the graph workloads.

use crate::layout::{ArrayRef, LayoutBuilder};
use batmem_graph::Csr;
use batmem_sim::ops::KernelSpec;
use batmem_types::BlockId;

/// Page size used for array alignment (matches the default UVM page size).
pub const PAGE_BYTES: u64 = 65_536;

/// Threads per block for every graph kernel.
pub const TPB: u32 = 256;

/// Registers per thread for the graph kernels. The paper (§4.1) notes that
/// most GraphBIG kernels use enough registers that, at the thread-count
/// occupancy limit, no additional block fits in the register file — which is
/// why Thread Oversubscription needs full context switching. 56 registers
/// reproduces that: 4 blocks × 256 threads × 56 regs = 57 344 of 65 536
/// registers, so a fifth block cannot fit.
pub const REGS_PER_THREAD: u32 = 56;

/// The device arrays of a graph workload.
#[derive(Debug, Clone)]
pub struct GraphArrays {
    /// CSR offsets (8-byte elements, `V + 1`).
    pub offsets: ArrayRef,
    /// CSR edge targets (4-byte elements, `E`).
    pub edges: ArrayRef,
    /// Edge weights (4-byte, `E`), when the workload is weighted.
    pub weights: Option<ArrayRef>,
    /// COO edge sources (4-byte, `E`), for data-centric kernels.
    pub coo_src: Option<ArrayRef>,
    /// Per-vertex property arrays (4-byte each): meaning is per-workload
    /// (levels, distances, colors, ranks, sigma, delta, ...).
    pub vprops: Vec<ArrayRef>,
    /// Worklist/frontier buffer (4-byte, `V`).
    pub worklist: ArrayRef,
    /// Small global-counter array (4-byte, 64) for atomics.
    pub counters: ArrayRef,
    footprint: u64,
}

/// Options controlling which arrays a workload allocates.
#[derive(Debug, Clone, Copy)]
pub struct ArrayOptions {
    /// Allocate an edge-weight array.
    pub weights: bool,
    /// Allocate a COO source array.
    pub coo: bool,
    /// Number of per-vertex property arrays.
    pub vprops: usize,
}

impl GraphArrays {
    /// Lays out the arrays for `graph`.
    pub fn new(graph: &Csr, opts: ArrayOptions) -> Self {
        let v = u64::from(graph.num_vertices());
        let e = graph.num_edges();
        let mut l = LayoutBuilder::new(PAGE_BYTES);
        let offsets = l.array(8, v + 1);
        let edges = l.array(4, e.max(1));
        let weights = opts.weights.then(|| l.array(4, e.max(1)));
        let coo_src = opts.coo.then(|| l.array(4, e.max(1)));
        let vprops = (0..opts.vprops).map(|_| l.array(4, v.max(1))).collect();
        let worklist = l.array(4, v.max(1));
        let counters = l.array(4, 64);
        Self {
            offsets,
            edges,
            weights,
            coo_src,
            vprops,
            worklist,
            counters,
            footprint: l.footprint_bytes(),
        }
    }

    /// Total footprint in bytes (page-rounded).
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint
    }
}

/// A kernel spec over `items` work items, one item per **thread**.
pub fn thread_centric_spec(items: u64) -> KernelSpec {
    KernelSpec {
        num_blocks: items.div_ceil(u64::from(TPB)).max(1) as u32,
        threads_per_block: TPB,
        regs_per_thread: REGS_PER_THREAD,
    }
}

/// A kernel spec over `items` work items, one item per **warp**
/// (warp-centric mapping: a 256-thread block covers 8 items).
pub fn warp_centric_spec(items: u64, warp_size: u32) -> KernelSpec {
    let warps_per_block = u64::from(TPB / warp_size);
    KernelSpec {
        num_blocks: items.div_ceil(warps_per_block).max(1) as u32,
        threads_per_block: TPB,
        regs_per_thread: REGS_PER_THREAD,
    }
}

/// The range of items `[start, end)` a warp owns under thread-centric
/// mapping (32 consecutive items), clipped to `total`.
pub fn warp_item_range(block: BlockId, warp_in_block: u16, total: u64) -> (u64, u64) {
    let start = block.index() as u64 * u64::from(TPB) + u64::from(warp_in_block) * 32;
    let end = (start + 32).min(total);
    (start.min(total), end)
}

/// The single item a warp owns under warp-centric mapping, if in range.
pub fn warp_item(block: BlockId, warp_in_block: u16, warp_size: u32, total: u64) -> Option<u64> {
    let warps_per_block = u64::from(TPB / warp_size);
    let item = block.index() as u64 * warps_per_block + u64::from(warp_in_block);
    (item < total).then_some(item)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn arrays_cover_graph() {
        let g = gen::rmat(8, 4, 1);
        let a = GraphArrays::new(&g, ArrayOptions { weights: true, coo: true, vprops: 2 });
        assert_eq!(a.offsets.len(), 257);
        assert_eq!(a.edges.len(), 1024);
        assert!(a.weights.is_some());
        assert!(a.coo_src.is_some());
        assert_eq!(a.vprops.len(), 2);
        assert!(a.footprint_bytes().is_multiple_of(PAGE_BYTES));
        // Rough accounting: offsets 257*8 + 3 edge arrays + 2 props +
        // worklist + counters, page-rounded.
        assert!(a.footprint_bytes() > (1024 * 4 * 3) as u64);
    }

    #[test]
    fn thread_centric_geometry() {
        let s = thread_centric_spec(1000);
        assert_eq!(s.num_blocks, 4);
        assert_eq!(s.threads_per_block, 256);
        let s = thread_centric_spec(0);
        assert_eq!(s.num_blocks, 1);
    }

    #[test]
    fn warp_centric_geometry() {
        let s = warp_centric_spec(100, 32);
        assert_eq!(s.num_blocks, 13); // 8 items per block
    }

    #[test]
    fn warp_ranges_partition_items() {
        let total = 1000u64;
        let spec = thread_centric_spec(total);
        let mut seen = 0u64;
        for b in 0..spec.num_blocks {
            for w in 0..8 {
                let (s, e) = warp_item_range(BlockId::new(b), w, total);
                seen += e - s;
            }
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn warp_item_mapping() {
        assert_eq!(warp_item(BlockId::new(0), 0, 32, 100), Some(0));
        assert_eq!(warp_item(BlockId::new(1), 3, 32, 100), Some(11));
        assert_eq!(warp_item(BlockId::new(12), 4, 32, 100), None); // 100th
    }
}
