//! Graph-coloring workloads (Jones-Plassmann rounds).
//!
//! Two GraphBIG implementations are modeled:
//!
//! * **GC-DTC** (data-thread-centric): each round launches over a compacted
//!   worklist of still-uncolored vertices, so offset reads diverge;
//! * **GC-TTC** (topological-thread-centric): each round scans all vertices.
//!
//! Coloring requires symmetric adjacency, so the workload colors the
//! symmetrized closure of the input graph (this also grows the edge
//! footprint, as GraphBIG's undirected CSR does).

use crate::common::{thread_centric_spec, warp_item_range, ArrayOptions, GraphArrays};
use crate::stream::StreamBuilder;
use batmem_graph::{alg, Csr};
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

/// Which coloring implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcVariant {
    /// Data-thread-centric (worklist-driven).
    Dtc,
    /// Topological-thread-centric (full scans).
    Ttc,
}

impl GcVariant {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            GcVariant::Dtc => "GC-DTC",
            GcVariant::Ttc => "GC-TTC",
        }
    }
}

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>, // symmetrized
    /// Round in which each vertex is colored.
    colored_round: Vec<u32>,
    /// Worklist per round (vertices still uncolored at round start).
    worklists: Vec<Vec<u32>>,
    arrays: GraphArrays,
}

/// A graph-coloring workload instance.
#[derive(Debug, Clone)]
pub struct Gc {
    variant: GcVariant,
    shared: Arc<Shared>,
}

impl Gc {
    /// Builds the coloring workload over (the symmetrized closure of)
    /// `graph`.
    pub fn new(variant: GcVariant, graph: Arc<Csr>) -> Self {
        let sym = Arc::new(graph.symmetrized());
        let res = alg::coloring(&sym);
        let n = sym.num_vertices() as usize;
        let mut colored_round = vec![u32::MAX; n];
        for (r, round) in res.rounds.iter().enumerate() {
            for &v in round {
                colored_round[v as usize] = r as u32;
            }
        }
        // Worklist for round r: vertices whose coloring round is >= r.
        let mut worklists = Vec::with_capacity(res.rounds.len());
        let mut current: Vec<u32> = (0..sym.num_vertices()).collect();
        for r in 0..res.rounds.len() as u32 {
            worklists.push(current.clone());
            current.retain(|&v| colored_round[v as usize] > r);
        }
        // vprops: [0] colors, [1] random priorities.
        let arrays = GraphArrays::new(&sym, ArrayOptions { weights: false, coo: false, vprops: 2 });
        Self {
            variant,
            shared: Arc::new(Shared { graph: sym, colored_round, worklists, arrays }),
        }
    }
}

impl Workload for Gc {
    fn name(&self) -> String {
        self.variant.name().to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        self.shared.worklists.len() as u32
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.shared.worklists.len(), "kernel {k} out of range");
        Box::new(GcKernel {
            variant: self.variant,
            shared: Arc::clone(&self.shared),
            round: k.index() as u32,
        })
    }
}

struct GcKernel {
    variant: GcVariant,
    shared: Arc<Shared>,
    round: u32,
}

impl GcKernel {
    /// One vertex's round body: read neighbor colors and priorities; if the
    /// vertex wins (it is colored this round), store its color.
    fn process(&self, b: &mut StreamBuilder, v: u32) {
        let sh = &self.shared;
        let deg = sh.graph.degree(v);
        if deg > 0 {
            b.load_seq(&sh.arrays.edges, sh.graph.edge_start(v), u64::from(deg));
            let nbrs = sh.graph.neighbors(v);
            b.load_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
            b.load_gather(&sh.arrays.vprops[1], nbrs.iter().map(|&n| u64::from(n)));
        }
        if sh.colored_round[v as usize] == self.round {
            b.store_seq(&sh.arrays.vprops[0], u64::from(v), 1);
        }
        b.compute(4 + deg / 8);
    }
}

impl Kernel for GcKernel {
    fn spec(&self) -> KernelSpec {
        match self.variant {
            GcVariant::Dtc => {
                thread_centric_spec(self.shared.worklists[self.round as usize].len() as u64)
            }
            GcVariant::Ttc => thread_centric_spec(u64::from(self.shared.graph.num_vertices())),
        }
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        match self.variant {
            GcVariant::Dtc => {
                let wl = &sh.worklists[self.round as usize];
                let (s, e) = warp_item_range(block, warp_in_block, wl.len() as u64);
                if s < e {
                    b.load_seq(&sh.arrays.worklist, s, e - s);
                    let verts = &wl[s as usize..e as usize];
                    // Scattered worklist entries: divergent offset reads.
                    b.load_gather(&sh.arrays.offsets, verts.iter().map(|&v| u64::from(v)));
                    for &v in verts {
                        self.process(&mut b, v);
                    }
                }
            }
            GcVariant::Ttc => {
                let total = u64::from(sh.graph.num_vertices());
                let (s, e) = warp_item_range(block, warp_in_block, total);
                if s < e {
                    // Scan: read own color to test "still uncolored".
                    b.load_seq(&sh.arrays.vprops[0], s, e - s);
                    let mut any = false;
                    for v in s..e {
                        if sh.colored_round[v as usize] >= self.round {
                            if !any {
                                b.load_seq(&sh.arrays.offsets, s, e - s + 1);
                                any = true;
                            }
                            self.process(&mut b, v as u32);
                        }
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    fn graph() -> Arc<Csr> {
        Arc::new(gen::rmat(7, 6, 5))
    }

    #[test]
    fn worklists_shrink_monotonically() {
        let w = Gc::new(GcVariant::Dtc, graph());
        let sh = &w.shared;
        for pair in sh.worklists.windows(2) {
            assert!(pair[1].len() < pair[0].len());
        }
        assert_eq!(sh.worklists[0].len(), sh.graph.num_vertices() as usize);
    }

    #[test]
    fn kernels_cover_all_rounds_and_produce_ops() {
        for v in [GcVariant::Dtc, GcVariant::Ttc] {
            let w = Gc::new(v, graph());
            assert!(w.num_kernels() >= 1);
            let k = w.kernel(KernelId::new(0));
            let mut stream = k.warp_stream(BlockId::new(0), 0);
            assert!(stream.next_op().is_some(), "{} round 0 idle", w.name());
        }
    }

    #[test]
    fn dtc_grid_shrinks_with_worklist() {
        let w = Gc::new(GcVariant::Dtc, graph());
        let first = w.kernel(KernelId::new(0)).spec().num_blocks;
        let last = w.kernel(KernelId::new(w.num_kernels() - 1)).spec().num_blocks;
        assert!(last <= first);
    }

    #[test]
    fn ttc_grid_is_constant() {
        let w = Gc::new(GcVariant::Ttc, graph());
        let n = w.shared.graph.num_vertices().div_ceil(256);
        for k in 0..w.num_kernels() {
            assert_eq!(w.kernel(KernelId::new(k)).spec().num_blocks, n);
        }
    }
}
