//! K-core decomposition by iterative peeling (topological).
//!
//! Each peel round scans all vertices, removes those whose remaining degree
//! fell below the current `k`, and decrements their neighbors' degrees —
//! divergent scatter stores, like the GraphBIG KCORE kernel.

use crate::common::{thread_centric_spec, warp_item_range, ArrayOptions, GraphArrays};
use crate::stream::StreamBuilder;
use batmem_graph::{alg, Csr};
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>,
    /// Peel round in which each vertex is removed.
    removed_round: Vec<u32>,
    rounds: usize,
    arrays: GraphArrays,
}

/// The KCORE workload.
#[derive(Debug, Clone)]
pub struct Kcore {
    shared: Arc<Shared>,
}

impl Kcore {
    /// Builds KCORE over (the symmetrized closure of) `graph` — core
    /// numbers are an undirected notion.
    pub fn new(graph: Arc<Csr>) -> Self {
        let sym = Arc::new(graph.symmetrized());
        let res = alg::kcore(&sym);
        let mut removed_round = vec![u32::MAX; sym.num_vertices() as usize];
        for (r, round) in res.peel_rounds.iter().enumerate() {
            for &v in round {
                removed_round[v as usize] = r as u32;
            }
        }
        // vprops: [0] remaining degree, [1] removed flag.
        let arrays = GraphArrays::new(&sym, ArrayOptions { weights: false, coo: false, vprops: 2 });
        Self {
            shared: Arc::new(Shared {
                graph: sym,
                removed_round,
                rounds: res.peel_rounds.len(),
                arrays,
            }),
        }
    }
}

impl Workload for Kcore {
    fn name(&self) -> String {
        "KCORE".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        self.shared.rounds as u32
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.shared.rounds, "kernel {k} out of range");
        Box::new(KcoreKernel { shared: Arc::clone(&self.shared), round: k.index() as u32 })
    }
}

struct KcoreKernel {
    shared: Arc<Shared>,
    round: u32,
}

impl Kernel for KcoreKernel {
    fn spec(&self) -> KernelSpec {
        thread_centric_spec(u64::from(self.shared.graph.num_vertices()))
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        let total = u64::from(sh.graph.num_vertices());
        let (s, e) = warp_item_range(block, warp_in_block, total);
        if s < e {
            // Scan: removed flags and remaining degrees, coalesced.
            b.load_seq(&sh.arrays.vprops[1], s, e - s);
            b.load_seq(&sh.arrays.vprops[0], s, e - s);
            b.compute(4);
            for v in s..e {
                if sh.removed_round[v as usize] == self.round {
                    let v = v as u32;
                    let deg = sh.graph.degree(v);
                    b.store_seq(&sh.arrays.vprops[1], u64::from(v), 1);
                    if deg > 0 {
                        b.load_seq(&sh.arrays.offsets, u64::from(v), 2);
                        b.load_seq(&sh.arrays.edges, sh.graph.edge_start(v), u64::from(deg));
                        // Decrement neighbor degrees: divergent scatter.
                        let nbrs = sh.graph.neighbors(v);
                        b.load_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
                        b.store_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
                    }
                    b.compute(2 + deg / 8);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn covers_every_vertex_exactly_once_across_rounds() {
        let w = Kcore::new(Arc::new(gen::rmat(7, 6, 9)));
        let counted = w.shared.removed_round.iter().filter(|&&r| r != u32::MAX).count();
        assert_eq!(counted, w.shared.graph.num_vertices() as usize);
        assert!(w.num_kernels() >= 1);
    }

    #[test]
    fn rounds_generate_scatter_stores() {
        let w = Kcore::new(Arc::new(gen::rmat(7, 6, 9)));
        let k = w.kernel(KernelId::new(0));
        let spec = k.spec();
        let mut stores = 0;
        for blk in 0..spec.num_blocks {
            for warp in 0..8 {
                let mut s = k.warp_stream(BlockId::new(blk), warp);
                while let Some(op) = s.next_op() {
                    if matches!(op, batmem_sim::ops::WarpOp::Store(_)) {
                        stores += 1;
                    }
                }
            }
        }
        assert!(stores > 0, "peel round 0 wrote nothing");
    }
}
