//! Device memory layout: page-aligned array allocation.
//!
//! `cudaMallocManaged` allocations are page-granular; we mirror that by
//! page-aligning every array so that two arrays never share a migration
//! page (which would blur per-array access statistics).

use batmem_types::VirtAddr;

/// A typed array placed in the unified address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    base: VirtAddr,
    elem_bytes: u32,
    len: u64,
}

impl ArrayRef {
    /// The address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of bounds.
    pub fn addr(&self, i: u64) -> VirtAddr {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base.offset(i * u64::from(self.elem_bytes))
    }

    /// The array's first address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Element count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len * u64::from(self.elem_bytes)
    }
}

/// Sequential, page-aligned allocator for a workload's arrays.
#[derive(Debug, Clone)]
pub struct LayoutBuilder {
    cursor: u64,
    page_bytes: u64,
}

impl LayoutBuilder {
    /// Creates a layout with the given page size (arrays are aligned to it).
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        Self { cursor: 0, page_bytes }
    }

    /// Allocates an array of `len` elements of `elem_bytes` bytes each.
    pub fn array(&mut self, elem_bytes: u32, len: u64) -> ArrayRef {
        let base = VirtAddr::new(self.cursor);
        let size = len.max(1) * u64::from(elem_bytes);
        self.cursor += size.div_ceil(self.page_bytes) * self.page_bytes;
        ArrayRef { base, elem_bytes, len }
    }

    /// Total bytes allocated so far (page-rounded) — the workload footprint.
    pub fn footprint_bytes(&self) -> u64 {
        self.cursor
    }

    /// Total pages allocated so far.
    pub fn footprint_pages(&self) -> u64 {
        self.cursor / self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_page_aligned_and_disjoint() {
        let mut l = LayoutBuilder::new(65_536);
        let a = l.array(4, 100);
        let b = l.array(8, 20_000);
        let c = l.array(4, 1);
        assert_eq!(a.base().raw(), 0);
        assert_eq!(b.base().raw(), 65_536); // a rounded up to one page
        // b = 160 KB -> 3 pages.
        assert_eq!(c.base().raw(), 65_536 * 4);
        assert_eq!(l.footprint_pages(), 5);
    }

    #[test]
    fn element_addressing() {
        let mut l = LayoutBuilder::new(65_536);
        let a = l.array(8, 100);
        assert_eq!(a.addr(0), a.base());
        assert_eq!(a.addr(3).raw(), a.base().raw() + 24);
        assert_eq!(a.size_bytes(), 800);
        assert_eq!(a.elem_bytes(), 8);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_index_panics_in_debug() {
        let mut l = LayoutBuilder::new(65_536);
        let a = l.array(4, 10);
        let _ = a.addr(10);
    }

    #[test]
    fn empty_array_still_occupies_a_page() {
        let mut l = LayoutBuilder::new(65_536);
        let a = l.array(4, 0);
        assert!(a.is_empty());
        assert_eq!(l.footprint_pages(), 1);
    }
}
