//! Workload models for the `batmem` simulator.
//!
//! The paper evaluates 11 GraphBIG kernels (§5.1): BC, five BFS variants
//! (DWC, TA, TF, TTC, TWC), two graph-coloring variants (DTC, TTC), KCORE,
//! SSSP-TWC, and PR — plus six regular (Rodinia-style) workloads for the
//! working-set study of Fig. 1 (CFD, DWT, GM, H3D, HS, LUD).
//!
//! Each workload is modeled as the sequence of **warp-level access streams**
//! its CUDA kernels would issue: the actual algorithm runs on the host (via
//! [`batmem_graph::alg`]) to obtain per-iteration frontiers/worklists, and
//! the kernels replay the corresponding loads and stores over a realistic
//! device memory layout (offsets / edge / property arrays, page-aligned).
//! The thread-to-data mappings — thread-centric, warp-centric, data-centric,
//! topological, frontier — follow the GraphBIG implementations they model,
//! which is what gives each variant its distinct divergence and page-reuse
//! signature.
//!
//! # Examples
//!
//! ```
//! use batmem_workloads::registry;
//! use batmem_graph::gen;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(gen::rmat(10, 8, 42));
//! let names = registry::irregular_names();
//! assert_eq!(names.len(), 11);
//! let workload = registry::build(names[0], Arc::clone(&graph)).unwrap();
//! assert!(workload.footprint_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
pub(crate) mod common;
pub mod gc;
pub mod kcore;
pub mod layout;
pub mod pr;
pub mod registry;
pub mod regular;
pub mod sssp;
pub mod stream;
pub mod synthetic;

pub use layout::{ArrayRef, LayoutBuilder};
pub use stream::StreamBuilder;
