//! PageRank (push-style, fixed iteration count).
//!
//! Every iteration streams the whole graph: each thread reads its vertex's
//! rank and degree, then scatters contributions to its out-neighbors' next
//! ranks — the classic bandwidth-bound, all-pages-touched irregular kernel.

use crate::common::{thread_centric_spec, warp_item_range, ArrayOptions, GraphArrays};
use crate::stream::StreamBuilder;
use batmem_graph::Csr;
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

/// Default PageRank iteration count for the simulated runs.
pub const DEFAULT_ITERATIONS: u32 = 3;

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>,
    arrays: GraphArrays,
}

/// The PR workload.
#[derive(Debug, Clone)]
pub struct Pr {
    shared: Arc<Shared>,
    iterations: u32,
}

impl Pr {
    /// Builds PageRank over `graph` with [`DEFAULT_ITERATIONS`] iterations.
    pub fn new(graph: Arc<Csr>) -> Self {
        Self::with_iterations(graph, DEFAULT_ITERATIONS)
    }

    /// Builds PageRank with an explicit iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_iterations(graph: Arc<Csr>, iterations: u32) -> Self {
        assert!(iterations > 0, "PageRank needs at least one iteration");
        // vprops: [0] rank, [1] next rank, [2] out-degree.
        let arrays = GraphArrays::new(&graph, ArrayOptions { weights: false, coo: false, vprops: 3 });
        Self { shared: Arc::new(Shared { graph, arrays }), iterations }
    }
}

impl Workload for Pr {
    fn name(&self) -> String {
        "PR".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        self.iterations
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.iterations as usize, "kernel {k} out of range");
        Box::new(PrKernel { shared: Arc::clone(&self.shared), iter: k.index() as u32 })
    }
}

struct PrKernel {
    shared: Arc<Shared>,
    iter: u32,
}

impl Kernel for PrKernel {
    fn spec(&self) -> KernelSpec {
        thread_centric_spec(u64::from(self.shared.graph.num_vertices()))
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        let total = u64::from(sh.graph.num_vertices());
        let (s, e) = warp_item_range(block, warp_in_block, total);
        if s < e {
            // Ping-pong rank buffers across iterations.
            let (cur, next) = if self.iter.is_multiple_of(2) { (0, 1) } else { (1, 0) };
            b.load_seq(&sh.arrays.vprops[cur], s, e - s);
            b.load_seq(&sh.arrays.vprops[2], s, e - s); // degrees
            b.load_seq(&sh.arrays.offsets, s, e - s + 1);
            b.compute(8);
            for v in s..e {
                let v = v as u32;
                let deg = sh.graph.degree(v);
                if deg == 0 {
                    continue;
                }
                b.load_seq(&sh.arrays.edges, sh.graph.edge_start(v), u64::from(deg));
                // Push contributions: divergent scatter to next ranks.
                let nbrs = sh.graph.neighbors(v);
                b.store_gather(&sh.arrays.vprops[next], nbrs.iter().map(|&n| u64::from(n)));
                b.compute(1 + deg / 8);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn iteration_count_is_kernel_count() {
        let g = Arc::new(gen::rmat(7, 6, 4));
        let w = Pr::with_iterations(Arc::clone(&g), 5);
        assert_eq!(w.num_kernels(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = Pr::with_iterations(Arc::new(gen::rmat(4, 2, 0)), 0);
    }

    #[test]
    fn every_iteration_streams_all_edges() {
        let g = Arc::new(gen::rmat(7, 6, 4));
        let w = Pr::new(Arc::clone(&g));
        let k = w.kernel(KernelId::new(0));
        let spec = k.spec();
        let mut edge_lines = 0u64;
        let edges = w.shared.arrays.edges;
        for blk in 0..spec.num_blocks {
            for warp in 0..8 {
                let mut s = k.warp_stream(BlockId::new(blk), warp);
                while let Some(op) = s.next_op() {
                    edge_lines += op
                        .addrs()
                        .iter()
                        .filter(|a| {
                            a.raw() >= edges.base().raw()
                                && a.raw() < edges.base().raw() + edges.size_bytes()
                        })
                        .count() as u64;
                }
            }
        }
        // Every edge array line should be touched at least once: E * 4 B /
        // 128 B lines (adjacency runs may split across ops but not skip).
        let expected_min = g.num_edges() * 4 / 128;
        assert!(edge_lines >= expected_min, "{edge_lines} < {expected_min}");
    }

    #[test]
    fn iterations_alternate_rank_buffers() {
        let g = Arc::new(gen::rmat(6, 4, 4));
        let w = Pr::with_iterations(Arc::clone(&g), 2);
        let rank_a = w.shared.arrays.vprops[0];
        let first_op_of = |iter: u32| {
            let k = w.kernel(KernelId::new(iter));
            let mut s = k.warp_stream(BlockId::new(0), 0);
            s.next_op().unwrap()
        };
        let a0 = first_op_of(0).addrs()[0];
        let a1 = first_op_of(1).addrs()[0];
        assert_eq!(a0, rank_a.base());
        assert_ne!(a1, rank_a.base());
    }
}
