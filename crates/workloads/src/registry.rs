//! Name-based workload construction (the paper's 11-workload suite).

use crate::bc::Bc;
use crate::bfs::{Bfs, BfsVariant};
use crate::gc::{Gc, GcVariant};
use crate::kcore::Kcore;
use crate::pr::Pr;
use crate::sssp::SsspTwc;
use batmem_graph::Csr;
use batmem_sim::ops::Workload;
use std::sync::Arc;

/// The 11 irregular workloads of the paper's evaluation (§5.1), in the
/// order the figures list them.
pub fn irregular_names() -> &'static [&'static str] {
    &[
        "BC", "BFS-DWC", "BFS-TA", "BFS-TF", "BFS-TTC", "BFS-TWC", "GC-DTC", "GC-TTC", "KCORE",
        "SSSP-TWC", "PR",
    ]
}

/// Builds the named workload over `graph`. Returns `None` for unknown
/// names.
///
/// # Examples
///
/// ```
/// use batmem_workloads::registry;
/// use batmem_graph::gen;
/// use std::sync::Arc;
///
/// let g = Arc::new(gen::rmat(8, 4, 1));
/// assert!(registry::build("BFS-TTC", Arc::clone(&g)).is_some());
/// assert!(registry::build("NOT-A-WORKLOAD", g).is_none());
/// ```
pub fn build(name: &str, graph: Arc<Csr>) -> Option<Box<dyn Workload>> {
    Some(match name {
        "BC" => Box::new(Bc::new(graph)),
        "BFS-DWC" => Box::new(Bfs::new(BfsVariant::Dwc, graph)),
        "BFS-TA" => Box::new(Bfs::new(BfsVariant::Ta, graph)),
        "BFS-TF" => Box::new(Bfs::new(BfsVariant::Tf, graph)),
        "BFS-TTC" => Box::new(Bfs::new(BfsVariant::Ttc, graph)),
        "BFS-TWC" => Box::new(Bfs::new(BfsVariant::Twc, graph)),
        "GC-DTC" => Box::new(Gc::new(GcVariant::Dtc, graph)),
        "GC-TTC" => Box::new(Gc::new(GcVariant::Ttc, graph)),
        "KCORE" => Box::new(Kcore::new(graph)),
        "SSSP-TWC" => Box::new(SsspTwc::new(graph)),
        "PR" => Box::new(Pr::new(graph)),
        _ => return None,
    })
}

/// Builds the full 11-workload suite over `graph`.
pub fn build_all(graph: &Arc<Csr>) -> Vec<Box<dyn Workload>> {
    irregular_names()
        .iter()
        .map(|n| build(n, Arc::clone(graph)).expect("registry covers its own names"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn registry_builds_all_eleven() {
        let g = Arc::new(gen::rmat(7, 4, 1));
        let all = build_all(&g);
        assert_eq!(all.len(), 11);
        for (w, name) in all.iter().zip(irregular_names()) {
            assert_eq!(&w.name(), name);
            assert!(w.num_kernels() > 0, "{name} has no kernels");
            assert!(w.footprint_bytes() > 0);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        let g = Arc::new(gen::rmat(4, 2, 1));
        assert!(build("BFS", g).is_none());
    }
}
