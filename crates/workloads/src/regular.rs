//! Regular (Rodinia-style) workload models for the Fig. 1 working-set study.
//!
//! For these kernels each thread block works on its own contiguous tile, so
//! the pages a block touches are disjoint from other blocks' pages — which
//! is exactly why memory-aware SM throttling helps them (Fig. 1, top) and
//! does nothing for the graph workloads (Fig. 1, bottom).
//!
//! The six models (CFD, DWT, GM, H3D, HS, LUD) differ in array count,
//! stencil halo, passes, and compute intensity; what matters for the study
//! is the tiled (block-partitioned) access structure they share.

use crate::layout::{ArrayRef, LayoutBuilder};
use crate::stream::StreamBuilder;
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

/// Threads per block for the regular kernels.
const TPB: u32 = 256;

/// A tiled regular workload.
#[derive(Debug, Clone)]
pub struct TiledRegular {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    name: String,
    inputs: Vec<ArrayRef>,
    output: ArrayRef,
    elements: u64,
    elems_per_thread: u64,
    passes: u32,
    /// Elements of halo read from neighbouring tiles (stencils).
    halo: u64,
    compute_per_elem: u32,
    regs_per_thread: u32,
    footprint: u64,
}

impl TiledRegular {
    /// Builds a tiled workload over `elements` 4-byte elements per array.
    ///
    /// # Panics
    ///
    /// Panics if `elements` or `num_inputs` is zero.
    pub fn new(
        name: &str,
        elements: u64,
        num_inputs: usize,
        passes: u32,
        halo: u64,
        compute_per_elem: u32,
    ) -> Self {
        Self::with_tile(name, elements, num_inputs, passes, halo, compute_per_elem, 64)
    }

    /// [`TiledRegular::new`] with an explicit per-thread element count
    /// (each block's tile is `256 * elems_per_thread` contiguous elements).
    ///
    /// # Panics
    ///
    /// Panics if `elements`, `num_inputs`, or `elems_per_thread` is zero.
    pub fn with_tile(
        name: &str,
        elements: u64,
        num_inputs: usize,
        passes: u32,
        halo: u64,
        compute_per_elem: u32,
        elems_per_thread: u64,
    ) -> Self {
        assert!(elements > 0 && num_inputs > 0 && elems_per_thread > 0, "workload needs data");
        let mut l = LayoutBuilder::new(crate::common::PAGE_BYTES);
        let inputs = (0..num_inputs).map(|_| l.array(4, elements)).collect();
        let output = l.array(4, elements);
        Self {
            inner: Arc::new(Inner {
                name: name.to_string(),
                inputs,
                output,
                elements,
                elems_per_thread,
                passes,
                halo,
                compute_per_elem,
                regs_per_thread: 24,
                footprint: l.footprint_bytes(),
            }),
        }
    }

    /// The paper's six regular workloads at a common per-array size.
    pub fn suite(elements: u64) -> Vec<TiledRegular> {
        vec![
            TiledRegular::new("CFD", elements, 5, 2, 64, 24),
            TiledRegular::new("DWT", elements, 2, 1, 16, 8),
            TiledRegular::new("GM", elements, 3, 1, 0, 16),
            TiledRegular::new("H3D", elements, 3, 2, 128, 12),
            TiledRegular::new("HS", elements, 3, 2, 64, 10),
            TiledRegular::new("LUD", elements, 1, 3, 32, 20),
        ]
    }
}

impl Workload for TiledRegular {
    fn name(&self) -> String {
        self.inner.name.clone()
    }

    fn footprint_bytes(&self) -> u64 {
        self.inner.footprint
    }

    fn num_kernels(&self) -> u32 {
        self.inner.passes
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.inner.passes as usize, "kernel {k} out of range");
        Box::new(TiledKernel { inner: Arc::clone(&self.inner) })
    }
}

struct TiledKernel {
    inner: Arc<Inner>,
}

impl Kernel for TiledKernel {
    fn spec(&self) -> KernelSpec {
        let tile = u64::from(TPB) * self.inner.elems_per_thread;
        KernelSpec {
            num_blocks: self.inner.elements.div_ceil(tile).max(1) as u32,
            threads_per_block: TPB,
            regs_per_thread: self.inner.regs_per_thread,
        }
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let inner = &self.inner;
        let mut b = StreamBuilder::new();
        let warp_elems = 32 * inner.elems_per_thread;
        let start = block.index() as u64 * u64::from(TPB) * inner.elems_per_thread
            + u64::from(warp_in_block) * warp_elems;
        if start >= inner.elements {
            return b.build();
        }
        let n = warp_elems.min(inner.elements - start);
        for arr in &inner.inputs {
            b.load_seq(arr, start, n);
            // Stencil halo: read a window beyond the warp's own slice.
            if inner.halo > 0 {
                let h_end = (start + n + inner.halo).min(inner.elements);
                if h_end > start + n {
                    b.load_seq(arr, start + n, h_end - (start + n));
                }
            }
        }
        b.compute(inner.compute_per_elem.saturating_mul(n as u32));
        b.store_seq(&inner.output, start, n);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_sim::ops::WarpOp;
    use std::collections::HashSet;

    #[test]
    fn suite_has_six_named_workloads() {
        let s = TiledRegular::suite(4096);
        let names: Vec<String> = s.iter().map(Workload::name).collect();
        assert_eq!(names, vec!["CFD", "DWT", "GM", "H3D", "HS", "LUD"]);
    }

    #[test]
    fn blocks_touch_disjoint_pages_modulo_halo() {
        let w = TiledRegular::with_tile("T", 1 << 16, 1, 1, 0, 4, 1);
        let k = w.kernel(KernelId::new(0));
        let geom = batmem_types::addr::PageGeometry::default();
        let pages_of_block = |blk: u32| -> HashSet<u64> {
            let mut pages = HashSet::new();
            for warp in 0..8 {
                let mut s = k.warp_stream(BlockId::new(blk), warp);
                while let Some(op) = s.next_op() {
                    for a in op.addrs() {
                        pages.insert(geom.page_of(*a).index());
                    }
                }
            }
            pages
        };
        // Blocks far apart share no pages (256 threads * 4 B = 1 KB per
        // block per array; 64 blocks per page -> compare block 0 and 128).
        let a = pages_of_block(0);
        let b = pages_of_block(128);
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn streams_cover_all_elements() {
        let w = TiledRegular::with_tile("T", 1000, 1, 1, 0, 4, 1);
        let k = w.kernel(KernelId::new(0));
        let spec = k.spec();
        let mut stored = 0u64;
        for blk in 0..spec.num_blocks {
            for warp in 0..8 {
                let mut s = k.warp_stream(BlockId::new(blk), warp);
                while let Some(op) = s.next_op() {
                    if let WarpOp::Store(a) = &op {
                        stored += a.len() as u64;
                    }
                }
            }
        }
        // 1000 elements over 128 B lines: at least ceil(4000/128) stores.
        assert!(stored >= 32);
    }

    #[test]
    fn halo_reads_extend_past_tile() {
        let w = TiledRegular::with_tile("T", 4096, 1, 1, 64, 4, 1);
        let k = w.kernel(KernelId::new(0));
        let mut s = k.warp_stream(BlockId::new(0), 0);
        let mut max_addr = 0;
        while let Some(op) = s.next_op() {
            for a in op.addrs() {
                max_addr = max_addr.max(a.raw());
            }
        }
        // Warp 0 owns elements 0..32 (128 B); halo of 64 elems reaches 384 B.
        assert!(max_addr >= 128 + 4 * 32, "max addr {max_addr}");
    }
}
