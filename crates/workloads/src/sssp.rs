//! SSSP-TWC: single-source shortest paths, topological warp-centric.
//!
//! Bellman-Ford-style relaxation rounds over a weighted graph; each warp
//! owns one vertex per round and relaxes its out-edges cooperatively if the
//! vertex's distance improved in the previous round.

use crate::common::{warp_centric_spec, warp_item, ArrayOptions, GraphArrays};
use crate::stream::StreamBuilder;
use batmem_graph::{alg, Csr, CsrBuilder};
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::collections::HashSet;
use std::sync::Arc;

#[derive(Debug)]
struct Shared {
    graph: Arc<Csr>, // weighted
    /// Round in which each vertex's distance last improved.
    active_in_round: Vec<HashSet<u32>>,
    arrays: GraphArrays,
}

/// The SSSP-TWC workload.
#[derive(Debug, Clone)]
pub struct SsspTwc {
    shared: Arc<Shared>,
}

impl SsspTwc {
    /// Builds SSSP over `graph`. Unweighted inputs get deterministic
    /// pseudo-random weights in `1..=15` (GraphBIG's SSSP is weighted; the
    /// weights change which rounds relax which vertices, distinguishing it
    /// from BFS).
    pub fn new(graph: Arc<Csr>) -> Self {
        let weighted = if graph.is_weighted() {
            graph
        } else {
            let mut b = CsrBuilder::new(graph.num_vertices());
            for v in 0..graph.num_vertices() {
                for (i, &t) in graph.neighbors(v).iter().enumerate() {
                    let h = (u64::from(v).wrapping_mul(0x9E37_79B9))
                        ^ (i as u64).wrapping_mul(0x85EB_CA6B);
                    b = b.weighted_edge(v, t, (h % 15 + 1) as u32);
                }
            }
            Arc::new(b.build())
        };
        let src = weighted.max_degree_vertex();
        let res = alg::sssp(&weighted, src);
        let active_in_round =
            res.rounds.iter().map(|r| r.iter().copied().collect()).collect();
        // vprops: [0] distances.
        let arrays =
            GraphArrays::new(&weighted, ArrayOptions { weights: true, coo: false, vprops: 1 });
        Self { shared: Arc::new(Shared { graph: weighted, active_in_round, arrays }) }
    }
}

impl Workload for SsspTwc {
    fn name(&self) -> String {
        "SSSP-TWC".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.shared.arrays.footprint_bytes()
    }

    fn num_kernels(&self) -> u32 {
        self.shared.active_in_round.len() as u32
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert!(k.index() < self.shared.active_in_round.len(), "kernel {k} out of range");
        Box::new(SsspKernel { shared: Arc::clone(&self.shared), round: k.index() })
    }
}

struct SsspKernel {
    shared: Arc<Shared>,
    round: usize,
}

impl Kernel for SsspKernel {
    fn spec(&self) -> KernelSpec {
        warp_centric_spec(u64::from(self.shared.graph.num_vertices()), 32)
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let sh = &self.shared;
        let mut b = StreamBuilder::new();
        let total = u64::from(sh.graph.num_vertices());
        if let Some(v) = warp_item(block, warp_in_block, 32, total) {
            // Topological: test whether this vertex relaxed last round.
            b.load_seq(&sh.arrays.vprops[0], v, 1);
            b.compute(4);
            if sh.active_in_round[self.round].contains(&(v as u32)) {
                let v = v as u32;
                let deg = sh.graph.degree(v);
                b.load_seq(&sh.arrays.offsets, u64::from(v), 2);
                if deg > 0 {
                    let start = sh.graph.edge_start(v);
                    b.load_seq(&sh.arrays.edges, start, u64::from(deg));
                    let weights = sh.arrays.weights.as_ref().expect("SSSP is weighted");
                    b.load_seq(weights, start, u64::from(deg));
                    let nbrs = sh.graph.neighbors(v);
                    b.load_gather(&sh.arrays.vprops[0], nbrs.iter().map(|&n| u64::from(n)));
                    // Relaxations that succeed this round write back.
                    let improved: Vec<u64> = match sh.active_in_round.get(self.round + 1) {
                        Some(next) => nbrs
                            .iter()
                            .filter(|&&n| next.contains(&n))
                            .map(|&n| u64::from(n))
                            .collect(),
                        None => Vec::new(),
                    };
                    if !improved.is_empty() {
                        b.store_gather(&sh.arrays.vprops[0], improved.iter().copied());
                    }
                    b.compute(2 + deg / 8);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_graph::gen;

    #[test]
    fn synthesizes_weights_deterministically() {
        let g = Arc::new(gen::rmat(7, 6, 2));
        let a = SsspTwc::new(Arc::clone(&g));
        let b = SsspTwc::new(Arc::clone(&g));
        assert!(a.shared.graph.is_weighted());
        assert_eq!(a.shared.graph, b.shared.graph);
        assert_eq!(a.num_kernels(), b.num_kernels());
    }

    #[test]
    fn weighted_rounds_differ_from_bfs_levels() {
        let g = Arc::new(gen::rmat(9, 8, 2));
        let w = SsspTwc::new(Arc::clone(&g));
        let bfs = alg::bfs(&g, g.max_degree_vertex());
        // Weighted relaxation usually needs more rounds than BFS depth.
        assert!(w.num_kernels() as usize >= bfs.frontiers.len());
    }

    #[test]
    fn round_zero_relaxes_only_the_source() {
        let g = Arc::new(gen::rmat(7, 6, 2));
        let w = SsspTwc::new(Arc::clone(&g));
        assert_eq!(w.shared.active_in_round[0].len(), 1);
        let kernel = w.kernel(KernelId::new(0));
        // Every warp still issues the topological check load.
        let mut s = kernel.warp_stream(BlockId::new(0), 0);
        assert!(s.next_op().is_some());
    }

    #[test]
    fn weight_array_is_read() {
        let g = Arc::new(gen::rmat(7, 6, 2));
        let w = SsspTwc::new(Arc::clone(&g));
        let weights = w.shared.arrays.weights.unwrap();
        let mut touched = false;
        for k in 0..w.num_kernels() {
            let kernel = w.kernel(KernelId::new(k));
            let spec = kernel.spec();
            for blk in 0..spec.num_blocks {
                for warp in 0..8 {
                    let mut s = kernel.warp_stream(BlockId::new(blk), warp);
                    while let Some(op) = s.next_op() {
                        if op.addrs().iter().any(|a| {
                            a.raw() >= weights.base().raw()
                                && a.raw() < weights.base().raw() + weights.size_bytes()
                        }) {
                            touched = true;
                        }
                    }
                }
            }
        }
        assert!(touched, "weights never read");
    }
}
