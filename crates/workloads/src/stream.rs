//! Warp-level stream construction helpers.
//!
//! Kernels build a warp's operation list through a [`StreamBuilder`], which
//! performs the coalescing a GPU's load/store unit would: consecutive
//! per-lane accesses to the same 128-byte line merge into one transaction,
//! and scattered (divergent) accesses are deduplicated by line and split
//! into at most warp-size transactions per operation.

use crate::layout::ArrayRef;
use batmem_sim::ops::{AccessStream, AddrList, VecStream, WarpOp};
use batmem_types::VirtAddr;

/// Default log2 of the transaction (cache line) size: 128 bytes.
pub const LINE_SHIFT: u32 = 7;

/// Builds one warp's coalesced operation stream.
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    ops: Vec<WarpOp>,
    /// Line-id scratch recycled across coalesce calls; stream construction
    /// runs once per warp wake-up on the engine's hot path, so the per-op
    /// working set must not allocate.
    lines: Vec<u64>,
    line_shift: u32,
    warp_size: usize,
}

impl StreamBuilder {
    /// Creates a builder with the default 128-byte line and 32-lane warp.
    pub fn new() -> Self {
        Self { ops: Vec::new(), lines: Vec::new(), line_shift: LINE_SHIFT, warp_size: 32 }
    }

    /// Appends `cycles` of computation (no-op when zero).
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        if cycles > 0 {
            // Merge adjacent compute ops to keep streams compact.
            if let Some(WarpOp::Compute(c)) = self.ops.last_mut() {
                *c = c.saturating_add(cycles);
            } else {
                self.ops.push(WarpOp::Compute(cycles));
            }
        }
        self
    }

    /// Coalesces `addrs` into per-line transactions and appends them as
    /// `store`-or-load ops. One transaction per distinct line; sort-dedup
    /// keeps this O(k log k) — hub vertices in power-law graphs gather tens
    /// of thousands of addresses per operation. The line scratch is reused
    /// across calls, so the only allocations are the op payloads themselves.
    fn push_coalesced(&mut self, addrs: impl Iterator<Item = VirtAddr>, store: bool) {
        let mut lines = std::mem::take(&mut self.lines);
        lines.clear();
        let shift = self.line_shift;
        lines.extend(addrs.map(|a| a.line(shift)));
        lines.sort_unstable();
        lines.dedup();
        for chunk in lines.chunks(self.warp_size) {
            let txns: AddrList =
                chunk.iter().map(|&l| VirtAddr::new(l << shift)).collect();
            self.ops.push(if store { WarpOp::Store(txns) } else { WarpOp::Load(txns) });
        }
        self.lines = lines;
    }

    /// Coalesces `count` consecutive elements starting at `start`
    /// arithmetically: contiguous elements no wider than a line touch every
    /// line from the first element's to the last element's, in ascending
    /// order, so the sort-dedup pass (and its per-element materialization)
    /// can be skipped outright.
    fn push_seq(&mut self, array: &ArrayRef, start: u64, count: u64, store: bool) {
        if count == 0 {
            return;
        }
        let shift = self.line_shift;
        if u64::from(array.elem_bytes()) > (1u64 << shift) {
            // An element wider than a line can skip lines between
            // consecutive element starts; use the general path.
            self.push_coalesced((start..start + count).map(|i| array.addr(i)), store);
            return;
        }
        let first = array.addr(start).line(shift);
        let last = array.addr(start + count - 1).line(shift);
        let mut line = first;
        while line <= last {
            let n = (last - line + 1).min(self.warp_size as u64);
            let txns: AddrList = (line..line + n).map(|l| VirtAddr::new(l << shift)).collect();
            self.ops.push(if store { WarpOp::Store(txns) } else { WarpOp::Load(txns) });
            line += n;
        }
    }

    /// Loads `count` consecutive elements of `array` starting at `start`
    /// (the fully coalesced pattern: one transaction per touched line).
    pub fn load_seq(&mut self, array: &ArrayRef, start: u64, count: u64) -> &mut Self {
        self.push_seq(array, start, count, false);
        self
    }

    /// Stores `count` consecutive elements of `array` starting at `start`.
    pub fn store_seq(&mut self, array: &ArrayRef, start: u64, count: u64) -> &mut Self {
        self.push_seq(array, start, count, true);
        self
    }

    /// Gathers `array[indices]` (the divergent pattern: one transaction per
    /// distinct line, at most a warp-size of transactions per op).
    pub fn load_gather<I>(&mut self, array: &ArrayRef, indices: I) -> &mut Self
    where
        I: IntoIterator<Item = u64>,
    {
        self.push_coalesced(indices.into_iter().map(|i| array.addr(i)), false);
        self
    }

    /// Scatters to `array[indices]`.
    pub fn store_gather<I>(&mut self, array: &ArrayRef, indices: I) -> &mut Self
    where
        I: IntoIterator<Item = u64>,
    {
        self.push_coalesced(indices.into_iter().map(|i| array.addr(i)), true);
        self
    }

    /// Number of ops queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finishes the stream.
    pub fn build(self) -> Box<dyn AccessStream + Send> {
        Box::new(VecStream::new(self.ops))
    }

    /// Returns the raw ops (testing).
    pub fn into_ops(self) -> Vec<WarpOp> {
        self.ops
    }
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutBuilder;

    fn array(elem: u32, len: u64) -> ArrayRef {
        LayoutBuilder::new(65_536).array(elem, len)
    }

    #[test]
    fn sequential_u32_loads_coalesce_per_line() {
        let a = array(4, 1000);
        let mut b = StreamBuilder::new();
        b.load_seq(&a, 0, 32); // 32 * 4 B = 128 B = exactly one line
        let ops = b.into_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].addrs().len(), 1);
    }

    #[test]
    fn sequential_u64_loads_take_two_lines() {
        let a = array(8, 1000);
        let mut b = StreamBuilder::new();
        b.load_seq(&a, 0, 32); // 256 B = two lines -> one op, two transactions
        let ops = b.into_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].addrs().len(), 2);
    }

    #[test]
    fn divergent_gather_dedupes_lines_and_chunks() {
        let a = array(4, 100_000);
        let mut b = StreamBuilder::new();
        // 64 indices, 1024 elements apart: 64 distinct lines -> 2 ops of 32.
        b.load_gather(&a, (0..64).map(|i| i * 1024));
        let ops = b.into_ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].addrs().len(), 32);
        assert_eq!(ops[1].addrs().len(), 32);
    }

    #[test]
    fn gather_of_same_line_is_one_transaction() {
        let a = array(4, 100);
        let mut b = StreamBuilder::new();
        b.load_gather(&a, [0, 1, 2, 5, 7]);
        let ops = b.into_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].addrs().len(), 1);
    }

    #[test]
    fn compute_merges() {
        let mut b = StreamBuilder::new();
        b.compute(3).compute(4).compute(0);
        let ops = b.into_ops();
        assert_eq!(ops, vec![WarpOp::Compute(7)]);
    }

    #[test]
    fn stores_are_stores() {
        let a = array(4, 100);
        let mut b = StreamBuilder::new();
        b.store_seq(&a, 0, 4);
        let ops = b.into_ops();
        assert!(matches!(ops[0], WarpOp::Store(_)));
    }

    #[test]
    fn builder_reports_length() {
        let a = array(4, 100);
        let mut b = StreamBuilder::new();
        assert!(b.is_empty());
        b.load_seq(&a, 0, 1).compute(1);
        assert_eq!(b.len(), 2);
    }
}
