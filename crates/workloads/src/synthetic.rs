//! Synthetic workloads for engine tests and microbenchmarks.

use crate::layout::{ArrayRef, LayoutBuilder};
use crate::stream::StreamBuilder;
use batmem_sim::ops::{BoxedStream, Kernel, KernelSpec, Workload};
use batmem_types::{BlockId, KernelId};
use std::sync::Arc;

/// A workload where each warp touches its own run of pages: warp `w` reads
/// one line from each of `pages_per_warp` consecutive pages starting at
/// page `w * pages_per_warp`, interleaved with compute.
///
/// Useful for deterministic fault-pattern tests: the page demand is exactly
/// predictable from the geometry.
#[derive(Debug, Clone)]
pub struct Strided {
    inner: Arc<StridedInner>,
}

#[derive(Debug)]
struct StridedInner {
    num_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    pages_per_warp: u64,
    compute_between: u32,
    repeats: u32,
    data: ArrayRef,
    footprint: u64,
}

impl Strided {
    /// Creates the workload. Total footprint is
    /// `num_blocks * warps_per_block * pages_per_warp` pages.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `threads_per_block` is not a
    /// multiple of 32.
    pub fn new(
        num_blocks: u32,
        threads_per_block: u32,
        regs_per_thread: u32,
        pages_per_warp: u64,
        compute_between: u32,
        repeats: u32,
    ) -> Self {
        assert!(num_blocks > 0 && pages_per_warp > 0 && repeats > 0, "empty workload");
        assert!(
            threads_per_block > 0 && threads_per_block.is_multiple_of(32),
            "threads_per_block must be a multiple of 32"
        );
        let warps = u64::from(num_blocks) * u64::from(threads_per_block / 32);
        let page_bytes = crate::common::PAGE_BYTES;
        let total_pages = warps * pages_per_warp;
        let mut l = LayoutBuilder::new(page_bytes);
        let data = l.array(4, total_pages * page_bytes / 4);
        Self {
            inner: Arc::new(StridedInner {
                num_blocks,
                threads_per_block,
                regs_per_thread,
                pages_per_warp,
                compute_between,
                repeats,
                data,
                footprint: l.footprint_bytes(),
            }),
        }
    }

    /// The page index warp `(block, warp)` starts at.
    pub fn first_page_of(&self, block: u32, warp: u16) -> u64 {
        let wpb = u64::from(self.inner.threads_per_block / 32);
        (u64::from(block) * wpb + u64::from(warp)) * self.inner.pages_per_warp
    }
}

impl Workload for Strided {
    fn name(&self) -> String {
        "SYNTH-STRIDED".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.inner.footprint
    }

    fn num_kernels(&self) -> u32 {
        1
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert_eq!(k.index(), 0, "strided workload has one kernel");
        Box::new(StridedKernel { inner: Arc::clone(&self.inner) })
    }
}

struct StridedKernel {
    inner: Arc<StridedInner>,
}

impl Kernel for StridedKernel {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            num_blocks: self.inner.num_blocks,
            threads_per_block: self.inner.threads_per_block,
            regs_per_thread: self.inner.regs_per_thread,
        }
    }

    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream {
        let inner = &self.inner;
        let wpb = u64::from(inner.threads_per_block / 32);
        let warp_id = block.index() as u64 * wpb + u64::from(warp_in_block);
        let page_bytes = crate::common::PAGE_BYTES;
        let mut b = StreamBuilder::new();
        for _ in 0..inner.repeats {
            for p in 0..inner.pages_per_warp {
                let page = warp_id * inner.pages_per_warp + p;
                let elem = page * page_bytes / 4;
                b.load_seq(&inner.data, elem, 1);
                b.compute(inner.compute_between);
            }
        }
        b.build()
    }
}

/// A workload where **every** warp touches the same small set of pages —
/// the fully shared working set that makes SM throttling useless (the
/// irregular half of Fig. 1's argument, distilled).
#[derive(Debug, Clone)]
pub struct SharedPages {
    inner: Arc<SharedInner>,
}

#[derive(Debug)]
struct SharedInner {
    num_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    pages: u64,
    compute_between: u32,
    data: ArrayRef,
    footprint: u64,
}

impl SharedPages {
    /// Creates the workload: every warp reads one line from each of
    /// `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `threads_per_block` is not a
    /// multiple of 32.
    pub fn new(num_blocks: u32, threads_per_block: u32, regs_per_thread: u32, pages: u64, compute_between: u32) -> Self {
        assert!(num_blocks > 0 && pages > 0, "empty workload");
        assert!(
            threads_per_block > 0 && threads_per_block.is_multiple_of(32),
            "threads_per_block must be a multiple of 32"
        );
        let page_bytes = crate::common::PAGE_BYTES;
        let mut l = LayoutBuilder::new(page_bytes);
        let data = l.array(4, pages * page_bytes / 4);
        Self {
            inner: Arc::new(SharedInner {
                num_blocks,
                threads_per_block,
                regs_per_thread,
                pages,
                compute_between,
                data,
                footprint: l.footprint_bytes(),
            }),
        }
    }
}

impl Workload for SharedPages {
    fn name(&self) -> String {
        "SYNTH-SHARED".to_string()
    }

    fn footprint_bytes(&self) -> u64 {
        self.inner.footprint
    }

    fn num_kernels(&self) -> u32 {
        1
    }

    fn kernel(&self, k: KernelId) -> Box<dyn Kernel> {
        assert_eq!(k.index(), 0, "shared-pages workload has one kernel");
        Box::new(SharedKernel { inner: Arc::clone(&self.inner) })
    }
}

struct SharedKernel {
    inner: Arc<SharedInner>,
}

impl Kernel for SharedKernel {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            num_blocks: self.inner.num_blocks,
            threads_per_block: self.inner.threads_per_block,
            regs_per_thread: self.inner.regs_per_thread,
        }
    }

    fn warp_stream(&self, _block: BlockId, _warp_in_block: u16) -> BoxedStream {
        let inner = &self.inner;
        let page_bytes = crate::common::PAGE_BYTES;
        let mut b = StreamBuilder::new();
        for p in 0..inner.pages {
            b.load_seq(&inner.data, p * page_bytes / 4, 1);
            b.compute(inner.compute_between);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_pages_are_per_warp_disjoint() {
        let w = Strided::new(2, 64, 32, 3, 10, 1);
        assert_eq!(w.first_page_of(0, 0), 0);
        assert_eq!(w.first_page_of(0, 1), 3);
        assert_eq!(w.first_page_of(1, 0), 6);
        // 2 blocks * 2 warps * 3 pages = 12 pages of footprint.
        assert_eq!(w.footprint_bytes(), 12 * 65_536);
    }

    #[test]
    fn strided_stream_touches_declared_pages() {
        let w = Strided::new(1, 32, 32, 2, 5, 2);
        let k = w.kernel(KernelId::new(0));
        let mut s = k.warp_stream(BlockId::new(0), 0);
        let geom = batmem_types::addr::PageGeometry::default();
        let mut pages = Vec::new();
        while let Some(op) = s.next_op() {
            for a in op.addrs() {
                pages.push(geom.page_of(*a).index());
            }
        }
        assert_eq!(pages, vec![0, 1, 0, 1]); // 2 pages x 2 repeats
    }

    #[test]
    fn shared_streams_are_identical_across_warps() {
        let w = SharedPages::new(4, 64, 32, 5, 2);
        let k = w.kernel(KernelId::new(0));
        let collect = |blk: u32, warp: u16| {
            let mut s = k.warp_stream(BlockId::new(blk), warp);
            let mut v = Vec::new();
            while let Some(op) = s.next_op() {
                v.extend(op.addrs().iter().map(|a| a.raw()));
            }
            v
        };
        assert_eq!(collect(0, 0), collect(3, 1));
        assert_eq!(w.footprint_bytes(), 5 * 65_536);
    }
}
