//! Prints the batch-by-batch timeline of a run — the textual analogue of
//! the paper's mechanism schematics (Figs. 2, 4, 7, 10): when each batch
//! began, how long the runtime fault handling took, when migrations
//! started, and how eviction policy changes the picture.
//!
//! Usage: `cargo run --release --example batch_anatomy [baseline|ue|ideal]`

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "baseline".to_string());
    let policy = match mode.as_str() {
        "baseline" => policies::baseline(),
        "ue" => policies::ue_only(),
        "ideal" => policies::ideal_eviction(),
        other => panic!("unknown mode {other}; use baseline|ue|ideal"),
    };

    let graph = Arc::new(gen::rmat(14, 16, 7));
    let workload = registry::build("BFS-TTC", graph).expect("known workload");
    let metrics = Simulation::builder()
        .policy(policy)
        .memory_ratio(0.5)
        .try_run(workload)
        .expect("simulation failed");

    println!("eviction mode: {mode}");
    println!(
        "{:>5} {:>10} {:>9} {:>10} {:>10} {:>7} {:>5} {:>6} | gap to 1st transfer",
        "batch", "start(us)", "hndl(us)", "mig@(us)", "end(us)", "pages", "pf", "evict"
    );
    for b in metrics.uvm.batches.iter().take(30) {
        let gap = b.first_migration_start - b.handling_done;
        let bar = "#".repeat(((gap / 2_000) as usize).min(40));
        println!(
            "{:>5} {:>10.1} {:>9.1} {:>10.1} {:>10.1} {:>7} {:>5} {:>6} | {}{}",
            b.id,
            b.start as f64 / 1e3,
            b.fault_handling_time() as f64 / 1e3,
            b.first_migration_start as f64 / 1e3,
            b.end as f64 / 1e3,
            b.faults,
            b.prefetches,
            b.evictions,
            bar,
            if gap == 0 { "(no eviction delay)" } else { "" },
        );
    }
    if metrics.uvm.batches.len() > 30 {
        println!("... {} more batches", metrics.uvm.batches.len() - 30);
    }
    println!();
    println!(
        "total {} batches, avg processing {:.0} us, avg handling {:.0} us ({:.0}% of batch)",
        metrics.uvm.num_batches(),
        metrics.uvm.avg_processing_time() / 1e3,
        metrics.uvm.avg_fault_handling_time() / 1e3,
        100.0 * metrics.uvm.avg_fault_handling_time() / metrics.uvm.avg_processing_time().max(1.0),
    );
    println!(
        "execution time {} us; D2H traffic {} KB",
        metrics.cycles / 1_000,
        metrics.uvm.d2h_bytes / 1024
    );
}
