//! Sweeps the memory oversubscription ratio for one workload (the Fig. 17
//! experiment shape): how execution time grows as GPU memory shrinks, and
//! how much Unobtrusive Eviction recovers at each point.
//!
//! Usage: `cargo run --release --example graph_oversubscription [WORKLOAD]`

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "PR".to_string());
    let graph = Arc::new(gen::rmat(14, 16, 42));

    let unlimited = Simulation::builder()
        .policy(policies::baseline())
        .try_run(registry::build(&name, Arc::clone(&graph)).expect("known workload"))
        .expect("simulation failed");

    println!("workload {name}; unlimited-memory time {} us", unlimited.cycles / 1_000);
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "ratio", "base(us)", "rel.time", "ue(us)", "ue speedup"
    );
    for ratio in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let base = Simulation::builder()
            .policy(policies::baseline())
            .memory_ratio(ratio)
            .try_run(registry::build(&name, Arc::clone(&graph)).unwrap())
            .expect("simulation failed");
        let ue = Simulation::builder()
            .policy(policies::ue_only())
            .memory_ratio(ratio)
            .try_run(registry::build(&name, Arc::clone(&graph)).unwrap())
            .expect("simulation failed");
        println!(
            "{:>6.1} {:>12} {:>10.2} {:>12} {:>10.2}",
            ratio,
            base.cycles / 1_000,
            base.cycles as f64 / unlimited.cycles as f64,
            ue.cycles / 1_000,
            ue.speedup_over(&base),
        );
    }
}
