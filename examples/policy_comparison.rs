//! Compares every policy of Fig. 11 on one workload.
//!
//! Usage: `cargo run --release --example policy_comparison [WORKLOAD] [RATIO]`
//! (defaults: BFS-TTC at a 0.5 oversubscription ratio).

use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn run(name: &str, ratio: f64, policy: batmem::PolicyConfig, etc: Option<batmem::EtcConfig>, graph: &Arc<batmem_graph::Csr>) -> RunMetrics {
    let workload = registry::build(name, Arc::clone(graph)).expect("known workload");
    let mut b = Simulation::builder().policy(policy).memory_ratio(ratio);
    if let Some(e) = etc {
        b = b.etc(e);
    }
    b.try_run(workload).expect("simulation failed")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("BFS-TTC", String::as_str);
    let ratio: f64 = args.get(2).map_or(0.5, |s| s.parse().expect("ratio is a number"));
    let scale: u32 = args.get(3).map_or(16, |s| s.parse().expect("scale"));
    let graph = Arc::new(gen::rmat(scale, 16, 42));

    println!("workload {name}, memory ratio {ratio}, graph: {:?}", graph);
    let baseline = run(name, ratio, policies::baseline(), None, &graph);
    let configs: Vec<(&str, RunMetrics)> = vec![
        ("BASELINE", baseline.clone()),
        ("BASELINE+PCIeComp", run(name, ratio, policies::baseline_with_compression(), None, &graph)),
        ("TO", run(name, ratio, policies::to_only(), None, &graph)),
        ("UE", run(name, ratio, policies::ue_only(), None, &graph)),
        ("TO+UE", run(name, ratio, policies::to_ue(), None, &graph)),
        ("ETC", {
            let (p, e) = policies::etc();
            run(name, ratio, p, Some(e), &graph)
        }),
        ("IDEAL-EVICT", run(name, ratio, policies::ideal_eviction(), None, &graph)),
    ];

    println!(
        "{:<18} {:>12} {:>8} {:>9} {:>10} {:>10} {:>9} {:>8}",
        "config", "cycles", "speedup", "batches", "avg pages", "avg btime", "premature", "ctxsw"
    );
    for (label, m) in &configs {
        println!(
            "{:<18} {:>12} {:>8.2} {:>9} {:>10.1} {:>10.0} {:>8.1}% {:>8}",
            label,
            m.cycles,
            m.speedup_over(baseline_ref(&configs)),
            m.uvm.num_batches(),
            m.uvm.avg_batch_pages(),
            m.uvm.avg_processing_time(),
            m.uvm.premature_rate() * 100.0,
            m.ctx_switches,
        );
    }
}

fn baseline_ref<'a>(configs: &'a [(&str, RunMetrics)]) -> &'a RunMetrics {
    &configs[0].1
}
