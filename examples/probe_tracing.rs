//! Smoke-test for the probe layer: runs a small oversubscribed BFS with a
//! `Tracer`, a `Timeline`, and a `MetricsSink` attached, prints the phase
//! breakdown and batch-size histogram, and writes the machine-readable
//! artifacts (`trace.jsonl`, `batches.csv`, `metrics.csv`) to a directory.
//!
//! Usage: `cargo run --release --example probe_tracing [outdir]`
//! (no outdir: print a trace excerpt instead of writing files)

use batmem::probes::{MetricsSink, Timeline, Tracer};
use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::path::Path;
use std::sync::Arc;

fn main() {
    let outdir = std::env::args().nth(1);

    let graph = Arc::new(gen::rmat(12, 8, 42));
    let workload = registry::build("BFS-TTC", graph).expect("known workload");

    let tracer = Tracer::bounded(64 * 1024);
    let timeline = Timeline::new();
    let sink = MetricsSink::labeled("BFS-TTC/to+ue");

    let metrics = Simulation::builder()
        .policy(policies::to_ue())
        .memory_ratio(0.5)
        .probe(tracer.clone())
        .probe(timeline.clone())
        .probe(sink.clone())
        .try_run(workload)
        .expect("simulation failed");

    println!(
        "run: {} cycles, {} batches, {} events traced ({} dropped by the ring)",
        metrics.cycles,
        metrics.uvm.num_batches(),
        tracer.len(),
        tracer.dropped(),
    );

    let phases = timeline.phase_totals();
    println!(
        "phases: handling {} us, eviction wait {} us, migration {} us",
        phases.handling / 1_000,
        phases.eviction_wait / 1_000,
        phases.migration / 1_000,
    );
    println!("batch-size histogram (pages <= bucket):");
    for (upper, count) in timeline.size_histogram() {
        println!("  <= {upper:>6}: {count}");
    }

    match outdir {
        Some(dir) => {
            let dir = Path::new(&dir);
            std::fs::create_dir_all(dir).expect("create output directory");
            tracer.write_jsonl(&dir.join("trace.jsonl")).expect("write trace.jsonl");
            std::fs::write(dir.join("batches.csv"), timeline.batches_csv())
                .expect("write batches.csv");
            std::fs::write(dir.join("metrics.csv"), sink.to_csv()).expect("write metrics.csv");
            println!("artifacts: {}", dir.display());
        }
        None => {
            println!("first 10 trace events:");
            for line in tracer.to_jsonl().lines().take(10) {
                println!("  {line}");
            }
        }
    }
}
