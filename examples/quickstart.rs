//! Quickstart: run one graph workload under memory oversubscription with
//! the paper's proposal (TO+UE) and print what happened.
//!
//! Usage: `cargo run --release --example quickstart`

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn main() {
    // A power-law graph: 32k vertices, 512k edges (~4 MB of device data).
    let graph = Arc::new(gen::rmat(15, 16, 42));
    let workload = registry::build("BFS-TTC", Arc::clone(&graph)).expect("known workload");

    println!("graph: {:?}", graph);
    println!("workload: BFS-TTC, footprint {} KB", workload.footprint_bytes() / 1024);

    // GPU memory sized to half the footprint: demand paging must evict.
    let metrics = Simulation::builder()
        .policy(policies::to_ue())
        .memory_ratio(0.5)
        .try_run(workload)
        .expect("simulation failed");

    println!();
    println!("executed {} kernels, {} blocks, {} warps", metrics.kernels, metrics.blocks_retired, metrics.warps_retired);
    println!("execution time: {} us", metrics.cycles / 1_000);
    println!("fault batches:  {}", metrics.uvm.num_batches());
    println!("  avg size:     {:.1} pages", metrics.uvm.avg_batch_pages());
    println!("  avg time:     {:.0} us", metrics.uvm.avg_processing_time() / 1_000.0);
    println!("faults raised:  {}", metrics.uvm.faults_raised);
    println!("prefetches:     {}", metrics.uvm.prefetches);
    println!("evictions:      {} ({:.1}% premature)", metrics.uvm.evictions, metrics.uvm.premature_rate() * 100.0);
    println!("ctx switches:   {}", metrics.ctx_switches);
    println!("L1 TLB hit rate: {:.1}%", metrics.mmu.l1.hit_rate() * 100.0);
}
