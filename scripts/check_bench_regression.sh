#!/usr/bin/env sh
# Compare an engine_hotpaths run against the checked-in baseline and fail
# on regressions beyond a tolerance. Guards the probe layer's
# zero-overhead-when-off contract: with no probe attached, the hot paths
# must stay where they were.
#
# usage: check_bench_regression.sh <baseline.txt> <current.txt> [tolerance_pct] [improve_pct]
#
# Both files are `cargo bench -p batmem-bench` output (extra lines are
# ignored). Comparison uses each benchmark's *min* time — the mean absorbs
# scheduler noise on shared CI runners, the min is the honest floor.
#
# A large *improvement* also fails: a min that drops more than improve_pct
# (default 25%) below the baseline means the baseline predates an
# optimization and no longer guards anything — re-pin it with a fresh
# `cargo bench -p batmem-bench` capture instead of coasting on stale
# numbers.
set -eu

baseline=${1:?usage: check_bench_regression.sh <baseline.txt> <current.txt> [tolerance_pct] [improve_pct]}
current=${2:?usage: check_bench_regression.sh <baseline.txt> <current.txt> [tolerance_pct] [improve_pct]}
tolerance=${3:-10}
improvement=${4:-25}

# Fail with an actionable message instead of a bare awk error when either
# input is missing or unreadable.
if [ ! -r "$baseline" ]; then
    echo "error: baseline file \`$baseline\` is missing or unreadable." >&2
    echo "Pin one from a trusted checkout with:" >&2
    echo "    cargo bench -p batmem-bench | tee $baseline" >&2
    exit 2
fi
if [ ! -r "$current" ]; then
    echo "error: current-run file \`$current\` is missing or unreadable." >&2
    echo "Capture one with:" >&2
    echo "    cargo bench -p batmem-bench | tee $current" >&2
    exit 2
fi

awk -v tol="$tolerance" -v imp="$improvement" '
    # Rows look like:
    #   name/case    123.5 us/iter (min   86.2 us, 200 iters)
    function min_of(line,    i) {
        for (i = 1; i <= NF; i++) if ($i == "(min") return $(i + 1)
        return ""
    }
    FNR == 1 { file++ }
    /us\/iter/ && file == 1 { base[$1] = min_of($0); order[n++] = $1 }
    /us\/iter/ && file == 2 { cur[$1] = min_of($0) }
    END {
        if (n == 0) { print "error: no benchmarks in baseline"; exit 2 }
        printf "%-36s %12s %12s %9s\n", "benchmark", "baseline-min", "current-min", "delta"
        failed = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (!(name in cur)) {
                printf "%-36s %12.1f %12s %9s  MISSING\n", name, base[name], "-", "-"
                failed = 1
                continue
            }
            delta = 100 * (cur[name] - base[name]) / base[name]
            verdict = "ok"
            if (delta > tol) { verdict = "REGRESSED"; failed = 1 }
            else if (delta < -imp) { verdict = "stale baseline - re-pin"; stale = 1 }
            printf "%-36s %12.1f %12.1f %+8.1f%%  %s\n", name, base[name], cur[name], delta, verdict
        }
        for (name in cur) if (!(name in base))
            printf "%-36s %12s %12.1f %9s  new (not in baseline)\n", name, "-", cur[name], "-"
        if (failed) { print "\nFAIL: hot paths regressed more than " tol "% vs baseline"; exit 1 }
        if (stale) {
            print "\nFAIL: min time improved more than " imp "% vs baseline - the baseline is"
            print "stale and guards nothing; re-pin crates/bench/baselines/engine_hotpaths.txt"
            print "from a fresh `cargo bench -p batmem-bench` run"
            exit 1
        }
        print "\nOK: all hot paths within " tol "% of baseline"
    }
' "$baseline" "$current"
