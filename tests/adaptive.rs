//! Differential tests for the probe-driven adaptive oversubscription
//! handler.
//!
//! The purity contract: `adaptive` with an infinite epoch window never
//! closes an epoch, so no signal ever publishes and the run is
//! byte-identical to the static `to` handler it wraps. The closed-loop
//! contract: with a finite window the handler reads only in-simulation
//! probe events, so runs remain bit-for-bit deterministic even while the
//! controller flips eviction aggressiveness and prefetch density online.

use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

/// `u64::MAX` as a spec parameter: an epoch that never ends.
const INFINITE_WINDOW: &str = "adaptive:18446744073709551615";

fn run_graph(name: &str, oversub: &str, ratio: f64) -> RunMetrics {
    let graph = Arc::new(gen::rmat(11, 8, 3));
    let w = registry::build(name, graph).unwrap();
    Simulation::builder()
        .policy(policies::to_ue())
        .oversubscription(oversub)
        .memory_ratio(ratio)
        .try_run(w)
        .unwrap()
}

/// With an infinite window the adaptive handler is the static `to`
/// handler, bit for bit: the probe rides along but never publishes, and
/// every signal read stays all-quiet. Full-timeline comparison via the
/// derived `Debug` (covers every batch record and counter).
#[test]
fn adaptive_with_infinite_window_matches_static_to_exactly() {
    for name in ["BFS-TTC", "SSSP-TWC"] {
        let to = run_graph(name, "to", 0.5);
        let adaptive = run_graph(name, INFINITE_WINDOW, 0.5);
        assert_eq!(
            format!("{to:?}"),
            format!("{adaptive:?}"),
            "{name}: adaptive with an infinite window diverged from static to"
        );
    }
}

/// The closed loop stays deterministic: the probe reads only in-sim
/// events, so two identical runs flip the same signals at the same epochs
/// and produce byte-identical timelines.
#[test]
fn adaptive_is_deterministic_with_a_finite_window() {
    let a = run_graph("BFS-TTC", "adaptive:50000", 0.5);
    let b = run_graph("BFS-TTC", "adaptive:50000", 0.5);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// A finite window must actually close epochs and act: under eviction
/// pressure the controller's decisions change the run relative to the
/// static handler (any byte-identical result would mean the loop is
/// dead code).
#[test]
fn adaptive_acts_under_pressure() {
    let to = run_graph("SSSP-TWC", "to", 0.5);
    let adaptive = run_graph("SSSP-TWC", "adaptive:50000", 0.5);
    assert!(to.uvm.evictions > 0, "no eviction pressure at 50% memory");
    assert_ne!(
        format!("{to:?}"),
        format!("{adaptive:?}"),
        "the finite-window loop never influenced the run"
    );
}

/// Adaptive runs complete and stay structurally sound under heavy
/// oversubscription, where the signals flip most often.
#[test]
fn adaptive_survives_heavy_oversubscription() {
    let m = run_graph("BFS-TTC", "adaptive:50000", 0.25);
    assert!(m.blocks_retired > 0);
    m.uvm
        .validate(m.memory_pages, 65_536)
        .expect("adaptive run must satisfy the structural invariants");
}
