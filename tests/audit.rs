//! Engine-level coverage for the opt-in invariant auditor, the watchdog
//! knob, and `try_run`'s pre-flight config validation.

use batmem::{policies, PolicyConfig, Simulation};
use batmem_graph::gen;
use batmem_types::{AuditLevel, SimConfig, SimError};
use batmem_workloads::registry;
use std::sync::Arc;

fn presets() -> Vec<(&'static str, PolicyConfig)> {
    vec![
        ("baseline", policies::baseline()),
        ("compression", policies::baseline_with_compression()),
        ("to", policies::to_only()),
        ("ue", policies::ue_only()),
        ("to_ue", policies::to_ue()),
        ("ideal", policies::ideal_eviction()),
    ]
}

#[test]
fn full_audit_passes_for_every_policy_preset() {
    // The quickstart scenario (BFS over an R-MAT graph at 50% memory) with
    // every conservation law re-derived after every UVM event.
    let graph = Arc::new(gen::rmat(12, 8, 42));
    for (label, policy) in presets() {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        let result = Simulation::builder()
            .policy(policy)
            .memory_ratio(0.5)
            .audit(AuditLevel::Full)
            .try_run(w);
        match result {
            Ok(m) => assert!(m.blocks_retired > 0, "{label}: no blocks retired"),
            Err(e) => panic!("{label}: audit tripped on a healthy run: {e}"),
        }
    }
}

#[test]
fn auditing_does_not_perturb_the_simulation() {
    // The auditor only observes: metrics must be bit-identical with it on.
    let graph = Arc::new(gen::rmat(10, 8, 21));
    let run = |level: AuditLevel| {
        let w = registry::build("PR", Arc::clone(&graph)).unwrap();
        Simulation::builder()
            .policy(policies::to_ue())
            .memory_ratio(0.5)
            .audit(level)
            .try_run(w)
            .unwrap()
    };
    let off = run(AuditLevel::Off);
    let basic = run(AuditLevel::Basic);
    let full = run(AuditLevel::Full);
    assert_eq!(off.cycles, basic.cycles);
    assert_eq!(off.cycles, full.cycles);
    assert_eq!(off.uvm.faults_raised, full.uvm.faults_raised);
    assert_eq!(off.uvm.evictions, full.uvm.evictions);
    assert_eq!(off.ctx_switches, full.ctx_switches);
}

#[test]
fn invalid_config_is_rejected_before_simulation() {
    let graph = Arc::new(gen::rmat(8, 8, 1));
    let cases: Vec<(&'static str, SimConfig)> = vec![
        ("gpu.num_sms", {
            let mut c = SimConfig::default();
            c.gpu.num_sms = 0;
            c
        }),
        ("uvm.gpu_mem_pages", {
            let mut c = SimConfig::default();
            c.uvm.gpu_mem_pages = Some(0);
            c
        }),
        ("tlb.l2_entries", {
            let mut c = SimConfig::default();
            c.tlb.l2_entries = 0;
            c
        }),
    ];
    for (want_field, cfg) in cases {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        let err = Simulation::builder().config(cfg).memory_ratio(0.5).try_run(w).unwrap_err();
        // Rejection happens before any simulated time passes.
        assert_eq!(err.cycle(), None, "config rejection carries a cycle");
        match err {
            SimError::InvalidConfig { field, .. } => assert_eq!(field, want_field),
            other => panic!("expected InvalidConfig({want_field}), got {other}"),
        }
    }
}

#[test]
fn invalid_page_geometry_is_rejected_at_construction() {
    // Inverted or out-of-range shift orderings never reach a SimConfig:
    // PageGeometry::new is the single validation point, and its rejection
    // is a typed InvalidConfig naming the offending shift.
    use batmem_types::addr::PageGeometry;
    for (base, large, region, want_field) in [
        (5u32, 21u32, 21u32, "uvm.geometry.base_shift"),
        (21, 16, 21, "uvm.geometry.large_shift"),
        (16, 21, 20, "uvm.geometry.region_shift"),
        (16, 41, 41, "uvm.geometry.large_shift"),
    ] {
        match PageGeometry::new(base, large, region) {
            Err(SimError::InvalidConfig { field, .. }) => assert_eq!(field, want_field),
            other => panic!("geometry ({base},{large},{region}): expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn non_finite_memory_ratio_is_rejected() {
    let graph = Arc::new(gen::rmat(8, 8, 1));
    let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
    let err = Simulation::builder()
        .policy(policies::baseline())
        .memory_ratio(f64::INFINITY)
        .try_run(w)
        .unwrap_err();
    match err {
        SimError::InvalidConfig { field, .. } => assert_eq!(field, "memory_ratio"),
        other => panic!("expected InvalidConfig(memory_ratio), got {other}"),
    }
}

#[test]
fn disabled_watchdog_still_completes_clean_runs() {
    let graph = Arc::new(gen::rmat(10, 8, 3));
    let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
    let m = Simulation::builder()
        .policy(policies::baseline())
        .memory_ratio(0.5)
        .watchdog_budget(0)
        .try_run(w)
        .unwrap();
    assert!(m.blocks_retired > 0);
}

#[test]
fn tiny_watchdog_budget_does_not_false_positive() {
    // Even a very small budget must never fire on a healthy run: every
    // event chain reaches a progress point (op consumed, page installed,
    // warp or block retired) well within a few hundred events.
    let graph = Arc::new(gen::rmat(10, 8, 3));
    for (label, policy) in presets() {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        let result = Simulation::builder()
            .policy(policy)
            .memory_ratio(0.5)
            .watchdog_budget(2_000)
            .try_run(w);
        assert!(result.is_ok(), "{label}: watchdog false positive: {}", result.unwrap_err());
    }
}
