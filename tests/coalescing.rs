//! Differential tests for transparent large-page coalescing.
//!
//! The off-path contract: `coalesce:off` at the default 64 KB geometry is
//! the seed simulator, bit for bit. The on-path contract: `coalesce:greedy`
//! actually promotes groups and converts page-table walks into large-TLB
//! hits, deterministically.
//!
//! The on-path tests use the synthetic strided workload: at test scales
//! the graph footprints (5-20 pages) never fill a 32-page large group, so
//! promotion physically cannot fire on them — which is itself pinned by
//! [`tiny_footprints_never_promote`].

use batmem::probes::MetricsSink;
use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_types::addr::PageGeometry;
use batmem_types::SimConfig;
use batmem_workloads::registry;
use batmem_workloads::synthetic::Strided;
use std::sync::Arc;

fn run_graph(name: &str, coalesce: Option<&str>) -> RunMetrics {
    let graph = Arc::new(gen::rmat(11, 8, 3));
    let w = registry::build(name, graph).unwrap();
    let mut b = Simulation::builder().policy(policies::to_ue()).memory_ratio(0.5);
    if let Some(spec) = coalesce {
        b = b.coalesce(spec);
    }
    b.try_run(w).unwrap()
}

/// 8 blocks x 2 warps x 32 pages/warp = 512 pages (sixteen 32-page
/// groups), touched in two passes so the second pass re-translates what
/// the first installed.
fn strided() -> Strided {
    Strided::new(8, 64, 32, 32, 10, 2)
}

fn run_strided(coalesce: &str, ratio: f64, sink: Option<MetricsSink>) -> RunMetrics {
    let w = strided();
    // Shrink the TLBs so the 512-page working set thrashes the base side
    // on every pass, while the sixteen 32-page groups still fit the large
    // side (which mirrors these shapes at group granularity) — the TLB
    // reach experiment at test scale.
    let mut sim = SimConfig::default();
    sim.tlb.l1_entries = 8;
    sim.tlb.l2_entries = 32;
    sim.tlb.l2_ways = 8;
    let mut b = Simulation::builder()
        .config(sim)
        .policy(policies::baseline())
        .memory_ratio(ratio)
        .coalesce(coalesce);
    if let Some(sink) = sink {
        b = b.probe(sink);
    }
    b.try_run(Box::new(w)).unwrap()
}

/// `coalesce:off` must be byte-identical to never mentioning the axis at
/// all: same cycles, same batch timeline, same translation counters. This
/// is the in-tree proxy for the figures-output pin — any off-path
/// bookkeeping shows up here first.
#[test]
fn coalesce_off_is_byte_identical_to_the_seed_path() {
    for name in ["BFS-TTC", "SSSP-TWC"] {
        let seed = run_graph(name, None);
        let off = run_graph(name, Some("off"));
        assert_eq!(seed.cycles, off.cycles, "{name}: cycles diverged");
        assert_eq!(seed.uvm.num_batches(), off.uvm.num_batches());
        assert_eq!(seed.uvm.evictions, off.uvm.evictions);
        assert_eq!(seed.mmu, off.mmu, "{name}: translation stats diverged");
        assert_eq!(off.mmu.coalesces, 0, "{name}: off must never promote");
        assert_eq!(off.mmu.splinters, 0);
        assert_eq!(off.mmu.large_hits(), 0);
        for (x, y) in seed.uvm.batches.iter().zip(&off.uvm.batches) {
            assert_eq!(x, y, "{name}: batch records diverged");
        }
    }
}

/// The default geometry the off-pin runs under really is the seed's
/// 64 KB / 2 MB point.
#[test]
fn default_geometry_is_the_seed_64kb_point() {
    let g = PageGeometry::default();
    assert_eq!(g.base_shift(), 16, "64 KB base pages");
    assert_eq!(g.region_shift(), 21, "2 MB regions");
    assert_eq!(SimConfig::default().uvm.geometry, g);
}

/// A footprint smaller than one large group can never promote — greedy on
/// the test-scale graphs is a semantic no-op (though not a byte-identical
/// one: batch completion-expansion may still widen batches).
#[test]
fn tiny_footprints_never_promote() {
    let w = registry::build("BFS-TTC", Arc::new(gen::rmat(11, 8, 3))).unwrap();
    assert!(
        w.footprint_bytes() / PageGeometry::default().page_bytes()
            < PageGeometry::default().pages_per_large(),
        "scale-11 BFS grew past one large group; pick a smaller pin"
    );
    let m = run_graph("BFS-TTC", Some("greedy"));
    assert_eq!(m.mmu.coalesces, 0);
    assert_eq!(m.mmu.large_hits(), 0);
}

/// Greedy coalescing must do real work — promote groups, serve
/// translations out of the large TLBs, and cut page-table walks relative
/// to the off run — and the improvement must be visible through the
/// `MetricsSink` rows, not just the in-memory stats.
#[test]
fn greedy_coalescing_improves_tlb_reach() {
    let off_sink = MetricsSink::new();
    let on_sink = MetricsSink::new();
    let off = run_strided("off", 1.0, Some(off_sink.clone()));
    let on = run_strided("greedy", 1.0, Some(on_sink.clone()));

    assert!(on.mmu.coalesces > 0, "greedy never promoted a group");
    assert!(on.mmu.large_hits() > 0, "promotions never served a translation");
    assert!(
        on.mmu.walks + on.mmu.large_walks < off.mmu.walks,
        "coalescing must reduce total walk traffic: {} + {} vs {}",
        on.mmu.walks,
        on.mmu.large_walks,
        off.mmu.walks,
    );

    // The same improvement through the metrics rows.
    let off_row = off_sink.rows().pop().unwrap();
    let on_row = on_sink.rows().pop().unwrap();
    assert_eq!(on_row.coalesces, on.mmu.coalesces);
    assert!(on_row.large_tlb_hits > 0);
    assert!(on_row.walks < off_row.walks);
}

/// Coalescing runs stay bit-for-bit deterministic, including under
/// eviction pressure (promote -> splinter -> re-promote cycles).
#[test]
fn greedy_coalescing_is_deterministic() {
    let a = run_strided("greedy", 0.5, None);
    let b = run_strided("greedy", 0.5, None);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mmu, b.mmu);
    assert_eq!(a.uvm.evictions, b.uvm.evictions);
}

/// Under eviction pressure promoted groups must splinter before their
/// pages leave, and `splinter:on-evict` is sticky: a splintered group
/// never re-promotes, so it promotes at most as often as greedy.
#[test]
fn eviction_pressure_splinters_and_sticky_never_repromotes() {
    let greedy = run_strided("greedy", 0.5, None);
    let sticky = run_strided("splinter:on-evict", 0.5, None);
    assert!(greedy.uvm.evictions > 0, "no eviction pressure at 50% memory");
    assert!(greedy.mmu.splinters > 0, "evictions under promotion must splinter");
    assert!(sticky.mmu.coalesces <= greedy.mmu.coalesces);
    // Sticky promotes each group at most once.
    assert!(
        sticky.mmu.coalesces <= 16,
        "sticky re-promoted: {} promotions over 16 groups",
        sticky.mmu.coalesces
    );
    assert!(greedy.mmu.splinters <= greedy.mmu.coalesces);
    assert!(sticky.mmu.splinters <= sticky.mmu.coalesces);
}
