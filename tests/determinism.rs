//! Bit-for-bit reproducibility of simulation runs.

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn run_once(name: &str, seed: u64) -> batmem::RunMetrics {
    let graph = Arc::new(gen::rmat(11, 8, seed));
    let w = registry::build(name, graph).unwrap();
    Simulation::builder().policy(policies::to_ue()).memory_ratio(0.5).try_run(w).unwrap()
}

#[test]
fn identical_runs_produce_identical_timelines() {
    for name in ["BFS-TTC", "SSSP-TWC", "GC-DTC"] {
        let a = run_once(name, 3);
        let b = run_once(name, 3);
        assert_eq!(a.cycles, b.cycles, "{name}: cycles diverged");
        assert_eq!(a.uvm.num_batches(), b.uvm.num_batches());
        assert_eq!(a.uvm.faults_raised, b.uvm.faults_raised);
        assert_eq!(a.uvm.evictions, b.uvm.evictions);
        assert_eq!(a.ctx_switches, b.ctx_switches);
        // Full batch-by-batch timing equality.
        for (x, y) in a.uvm.batches.iter().zip(&b.uvm.batches) {
            assert_eq!(x, y, "{name}: batch records diverged");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once("BFS-TTC", 3);
    let b = run_once("BFS-TTC", 4);
    assert_ne!(a.cycles, b.cycles);
}

#[test]
fn different_policies_differ() {
    let graph = Arc::new(gen::rmat(11, 8, 3));
    let base = Simulation::builder()
        .policy(policies::baseline())
        .memory_ratio(0.5)
        .try_run(registry::build("BFS-TTC", Arc::clone(&graph)).unwrap()).unwrap();
    let ue = Simulation::builder()
        .policy(policies::ue_only())
        .memory_ratio(0.5)
        .try_run(registry::build("BFS-TTC", graph).unwrap()).unwrap();
    assert_ne!(base.cycles, ue.cycles);
}
