//! End-to-end runs of every workload through the full engine.

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_types::KernelId;
use batmem_workloads::registry;
use std::sync::Arc;

fn small_graph() -> Arc<batmem_graph::Csr> {
    Arc::new(gen::rmat(10, 8, 7))
}

#[test]
fn every_workload_completes_with_unlimited_memory() {
    let graph = small_graph();
    for name in registry::irregular_names() {
        let w = registry::build(name, Arc::clone(&graph)).unwrap();
        let m = Simulation::builder().policy(policies::baseline()).try_run(w).unwrap();
        assert!(m.cycles > 0, "{name}: no time elapsed");
        assert!(m.blocks_retired > 0, "{name}: no blocks retired");
        assert!(m.warps_retired > 0, "{name}: no warps retired");
        assert!(m.uvm.faults_raised > 0, "{name}: demand paging never engaged");
        assert_eq!(m.uvm.evictions, 0, "{name}: evicted with unlimited memory");
        assert_eq!(m.workload, *name);
    }
}

#[test]
fn every_workload_completes_under_oversubscription() {
    let graph = small_graph();
    for name in registry::irregular_names() {
        let w = registry::build(name, Arc::clone(&graph)).unwrap();
        let m = Simulation::builder()
            .policy(policies::to_ue())
            .memory_ratio(0.5)
            .try_run(w).unwrap();
        assert!(m.uvm.evictions > 0, "{name}: 50% memory but no evictions");
        assert!(m.uvm.num_batches() > 0, "{name}: no batches");
    }
}

#[test]
fn blocks_retired_matches_grid_sizes() {
    let graph = small_graph();
    let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
    let expected: u64 = (0..w.num_kernels())
        .map(|k| u64::from(w.kernel(KernelId::new(k)).spec().num_blocks))
        .sum();
    let w = registry::build("BFS-TTC", graph).unwrap();
    let m = Simulation::builder().try_run(w).unwrap();
    assert_eq!(m.blocks_retired, expected);
}

#[test]
fn oversubscribed_run_is_slower_than_unlimited() {
    let graph = small_graph();
    let unlimited = Simulation::builder()
        .try_run(registry::build("PR", Arc::clone(&graph)).unwrap()).unwrap();
    let half = Simulation::builder()
        .memory_ratio(0.5)
        .try_run(registry::build("PR", Arc::clone(&graph)).unwrap()).unwrap();
    assert!(
        half.cycles > unlimited.cycles,
        "oversubscription should cost time: {} vs {}",
        half.cycles,
        unlimited.cycles
    );
}

#[test]
fn regular_workloads_complete() {
    for w in batmem_workloads::regular::TiledRegular::suite(1 << 18) {
        let name = batmem_sim::ops::Workload::name(&w);
        let m = Simulation::builder().memory_ratio(0.75).try_run(Box::new(w)).unwrap();
        assert!(m.blocks_retired > 0, "{name}: nothing ran");
    }
}

#[test]
fn synthetic_strided_faults_once_per_page() {
    use batmem_sim::ops::Workload;
    let w = batmem_workloads::synthetic::Strided::new(16, 256, 32, 2, 100, 1);
    let footprint_pages = w.footprint_bytes() / 65_536;
    let m = Simulation::builder().try_run(Box::new(w)).unwrap();
    // Every page migrates exactly once (disjoint pages, one touch each,
    // no eviction): faults plus prefetches cover the footprint.
    let faulted: u64 = m.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
    let prefetched: u64 = m.uvm.batches.iter().map(|b| u64::from(b.prefetches)).sum();
    assert_eq!(faulted + prefetched, footprint_pages);
}

#[test]
fn memory_pages_builder_overrides_ratio() {
    let w = batmem_workloads::synthetic::SharedPages::new(8, 256, 32, 10, 50);
    let m = Simulation::builder().memory_pages(5).try_run(Box::new(w)).unwrap();
    assert_eq!(m.memory_pages, Some(5));
    assert!(m.uvm.peak_resident_pages <= 5);
    assert!(m.uvm.evictions > 0);
}
