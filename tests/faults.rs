//! Fault-injection robustness suite.
//!
//! Every policy preset must either complete or return a typed [`SimError`]
//! under injected hostility — never panic or hang — and crafted completion
//! loss must trip the engine's deadlock detection or forward-progress
//! watchdog, depending on whether the policy keeps the event queue alive.

use batmem::{policies, PolicyConfig, Simulation};
use batmem_graph::gen;
use batmem_types::{AuditLevel, SimError};
use batmem_uvm::InjectConfig;
use batmem_workloads::registry;
use std::sync::Arc;

fn presets() -> Vec<(&'static str, PolicyConfig)> {
    vec![
        ("baseline", policies::baseline()),
        ("compression", policies::baseline_with_compression()),
        ("to", policies::to_only()),
        ("ue", policies::ue_only()),
        ("to_ue", policies::to_ue()),
        ("ideal", policies::ideal_eviction()),
    ]
}

#[test]
fn every_preset_survives_noisy_injection() {
    // Jitter, stalls, duplicate faults, and dropped prefetches perturb the
    // batch boundaries but never lose a completion: every preset must still
    // run to completion, with the full auditor watching.
    let graph = Arc::new(gen::rmat(10, 8, 7));
    for (label, policy) in presets() {
        for seed in [1u64, 2, 3] {
            let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
            let result = Simulation::builder()
                .policy(policy)
                .memory_ratio(0.4)
                .audit(AuditLevel::Full)
                .inject(InjectConfig::noisy(seed))
                .try_run(w);
            match result {
                Ok(m) => {
                    assert!(m.cycles > 0, "{label}/seed{seed}: empty run");
                    assert!(m.blocks_retired > 0, "{label}/seed{seed}: no blocks retired");
                }
                Err(e) => panic!("{label}/seed{seed}: typed failure on a survivable run: {e}"),
            }
        }
    }
}

#[test]
fn noisy_injection_is_deterministic_per_seed() {
    let graph = Arc::new(gen::rmat(10, 8, 7));
    let run = || {
        let w = registry::build("PR", Arc::clone(&graph)).unwrap();
        Simulation::builder()
            .policy(policies::to_ue())
            .memory_ratio(0.5)
            .inject(InjectConfig::noisy(99))
            .try_run(w)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.uvm.faults_raised, b.uvm.faults_raised);
    assert_eq!(a.uvm.evictions, b.uvm.evictions);
}

#[test]
fn noisy_injection_slows_the_run_down() {
    // The injected jitter and stalls are real simulated latency: the same
    // workload must take longer than the clean run.
    let graph = Arc::new(gen::rmat(10, 8, 7));
    let run = |inject: Option<InjectConfig>| {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        let mut b = Simulation::builder().policy(policies::baseline()).memory_ratio(0.5);
        if let Some(i) = inject {
            b = b.inject(i);
        }
        b.try_run(w).unwrap()
    };
    let clean = run(None);
    let noisy = run(Some(InjectConfig::noisy(5)));
    assert!(
        noisy.cycles > clean.cycles,
        "injected PCIe delay did not slow the run: {} <= {}",
        noisy.cycles,
        clean.cycles
    );
}

#[test]
fn lost_completions_are_caught_not_hung() {
    // Dropping DMA completion events strands a batch forever. Depending on
    // the policy the engine either drains its queue (deadlock) or keeps
    // spinning on self-rescheduling events (livelock, caught by the
    // watchdog) — both must surface as typed errors, never as a hang.
    let graph = Arc::new(gen::rmat(10, 8, 7));
    for (label, policy) in presets() {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        let err = Simulation::builder()
            .policy(policy)
            .memory_ratio(0.5)
            .watchdog_budget(20_000)
            .inject(InjectConfig::lost_completions(1, 3))
            .try_run(w)
            .expect_err(&format!("{label}: run completed despite lost completions"));
        assert!(
            matches!(err, SimError::Deadlock { .. } | SimError::Livelock { .. }),
            "{label}: expected deadlock/livelock, got {err}"
        );
        assert!(err.cycle().is_some(), "{label}: mid-run error lost its cycle");
    }
}

#[test]
fn lost_completion_deadlocks_the_baseline() {
    // The baseline schedules nothing periodic: once the stranded batch's
    // waiters are asleep the event queue drains with blocks outstanding.
    let graph = Arc::new(gen::rmat(10, 8, 7));
    let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
    let err = Simulation::builder()
        .policy(policies::baseline())
        .memory_ratio(0.5)
        .inject(InjectConfig::lost_completions(1, 3))
        .try_run(w)
        .unwrap_err();
    match err {
        SimError::Deadlock { cycle, detail } => {
            assert!(cycle > 0);
            assert!(!detail.is_empty(), "deadlock dump is empty");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn watchdog_catches_the_livelock_from_lost_completions() {
    // Thread Oversubscription keeps a periodic lifetime-sampling event in
    // the queue, so the queue never drains: only the forward-progress
    // watchdog can catch the stranded run.
    let graph = Arc::new(gen::rmat(10, 8, 7));
    let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
    let budget = 10_000;
    let err = Simulation::builder()
        .policy(policies::to_ue())
        .memory_ratio(0.5)
        .watchdog_budget(budget)
        .inject(InjectConfig::lost_completions(1, 3))
        .try_run(w)
        .unwrap_err();
    match err {
        SimError::Livelock { events_without_progress, snapshot, .. } => {
            assert!(
                events_without_progress >= budget,
                "watchdog fired early: {events_without_progress} < {budget}"
            );
            assert!(!snapshot.is_empty(), "livelock dump is empty");
        }
        other => panic!("expected livelock, got {other}"),
    }
}
