//! Whole-run structural invariants over the batch records and counters.

use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn run(name: &str, policy: batmem::PolicyConfig, ratio: f64) -> RunMetrics {
    let graph = Arc::new(gen::rmat(12, 8, 21));
    let w = registry::build(name, graph).unwrap();
    Simulation::builder().policy(policy).memory_ratio(ratio).try_run(w).unwrap()
}

fn check_batch_structure(m: &RunMetrics, label: &str) {
    let page_bytes = 65_536u64;
    let mut prev_end = 0;
    for b in &m.uvm.batches {
        assert!(b.start >= prev_end, "{label}: batch {} overlaps its predecessor", b.id);
        assert!(b.handling_done >= b.start, "{label}: handling precedes start");
        assert!(
            b.first_migration_start >= b.handling_done,
            "{label}: migration inside the handling window"
        );
        assert!(b.end >= b.first_migration_start, "{label}: batch ends before migrating");
        assert!(b.faults > 0, "{label}: batch {} serviced no faults", b.id);
        assert_eq!(
            b.migrated_bytes,
            u64::from(b.pages()) * page_bytes,
            "{label}: byte accounting"
        );
        prev_end = b.end;
    }
    // Aggregate identities.
    let pages: u64 = m.uvm.batches.iter().map(|b| u64::from(b.pages())).sum();
    assert_eq!(m.uvm.h2d_bytes, pages * page_bytes, "{label}: H2D bytes vs pages migrated");
    let prefetches: u64 = m.uvm.batches.iter().map(|b| u64::from(b.prefetches)).sum();
    assert_eq!(m.uvm.prefetches, prefetches, "{label}: prefetch accounting");
    let evictions: u64 = m.uvm.batches.iter().map(|b| u64::from(b.evictions)).sum();
    assert_eq!(m.uvm.evictions, evictions, "{label}: eviction accounting");
    assert!(m.uvm.premature_evictions <= m.uvm.evictions, "{label}: premature > total");
    if let Some(cap) = m.memory_pages {
        assert!(
            m.uvm.peak_resident_pages <= cap,
            "{label}: peak residency {} exceeds capacity {cap}",
            m.uvm.peak_resident_pages
        );
    }
}

#[test]
fn batch_structure_holds_across_policies() {
    for (label, policy) in [
        ("baseline", policies::baseline()),
        ("ue", policies::ue_only()),
        ("to", policies::to_only()),
        ("to_ue", policies::to_ue()),
        ("ideal", policies::ideal_eviction()),
        ("compression", policies::baseline_with_compression()),
    ] {
        let m = run("BFS-TTC", policy, 0.5);
        check_batch_structure(&m, label);
    }
}

#[test]
fn batch_structure_holds_across_workloads() {
    for name in ["BC", "BFS-DWC", "GC-TTC", "KCORE", "SSSP-TWC", "PR"] {
        let m = run(name, policies::to_ue(), 0.5);
        check_batch_structure(&m, name);
    }
}

#[test]
fn serialized_eviction_bytes_balance() {
    let m = run("PR", policies::baseline(), 0.5);
    // Every eviction moves one page D2H.
    assert_eq!(m.uvm.d2h_bytes, m.uvm.evictions * 65_536);
}

#[test]
fn faults_equal_walks_that_missed() {
    let m = run("BFS-TTC", policies::baseline(), 0.5);
    // Each MMU fault corresponds to a completed walk; walks >= faults.
    assert!(m.mmu.walks >= m.mmu.faults);
    assert!(m.mmu.faults > 0);
}

#[test]
fn root_chunk_eviction_granularity_runs() {
    use batmem_types::policy::EvictionGranularity;
    let mut policy = policies::baseline();
    policy.eviction_granularity = EvictionGranularity::RootChunk;
    let m = run("PR", policy, 0.5);
    check_batch_structure(&m, "root-chunk");
    assert!(m.uvm.evictions > 0);
}

#[test]
fn tighter_memory_evicts_more() {
    let tight = run("PR", policies::baseline(), 0.3);
    let loose = run("PR", policies::baseline(), 0.8);
    assert!(tight.uvm.evictions > loose.uvm.evictions);
    assert!(tight.cycles > loose.cycles);
}

#[test]
fn handling_time_grows_with_faults_in_batch() {
    let m = run("BFS-TTC", policies::baseline(), 0.5);
    for b in &m.uvm.batches {
        let expected = 20_000 + 30 * u64::from(b.faults);
        assert_eq!(b.handling_done - b.start, expected, "batch {}", b.id);
    }
}
