//! Cross-policy behavioural checks: the paper's qualitative claims must
//! hold on the simulator.

use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn graph() -> Arc<batmem_graph::Csr> {
    // The evaluation suite's default input (scale 15): large enough for
    // the oversubscribed regime the paper evaluates; the qualitative
    // assertions below are scale-sensitive and verified at this size.
    Arc::new(gen::rmat(15, 16, 42))
}

fn run(name: &str, policy: batmem::PolicyConfig, ratio: f64) -> RunMetrics {
    let w = registry::build(name, graph()).unwrap();
    Simulation::builder().policy(policy).memory_ratio(ratio).try_run(w).unwrap()
}

#[test]
fn to_ue_beats_baseline_under_oversubscription() {
    // The headline claim (Fig. 11): the combined proposal outperforms the
    // prefetching baseline.
    for name in ["BFS-TTC", "PR"] {
        let base = run(name, policies::baseline(), 0.5);
        let to_ue = run(name, policies::to_ue(), 0.5);
        let speedup = to_ue.speedup_over(&base);
        assert!(speedup > 1.1, "{name}: TO+UE speedup only {speedup:.2}");
    }
}

#[test]
fn ue_alone_beats_baseline() {
    let base = run("BFS-TTC", policies::baseline(), 0.5);
    let ue = run("BFS-TTC", policies::ue_only(), 0.5);
    assert!(ue.speedup_over(&base) > 1.05, "UE speedup {:.2}", ue.speedup_over(&base));
    // UE moves evictions onto the D2H pipe concurrently with migrations;
    // the average batch processing time must drop (Fig. 14).
    assert!(ue.uvm.avg_processing_time() < base.uvm.avg_processing_time());
    assert!(ue.uvm.preemptive_evictions > 0, "UE never used the top-half path");
}

#[test]
fn ideal_eviction_beats_baseline() {
    // Fig. 8: removing eviction latency recovers performance.
    let base = run("BFS-TTC", policies::baseline(), 0.5);
    let ideal = run("BFS-TTC", policies::ideal_eviction(), 0.5);
    assert!(ideal.speedup_over(&base) > 1.0);
    assert_eq!(ideal.uvm.d2h_bytes, 0, "ideal eviction must not move data");
}

#[test]
fn to_increases_batch_size_and_reduces_batch_count() {
    // Figs. 12 & 13.
    let base = run("PR", policies::baseline(), 0.5);
    let to = run("PR", policies::to_only(), 0.5);
    assert!(to.ctx_switches > 0, "TO never context switched");
    assert!(
        to.uvm.num_batches() < base.uvm.num_batches(),
        "batches: TO {} vs baseline {}",
        to.uvm.num_batches(),
        base.uvm.num_batches()
    );
    assert!(
        to.uvm.avg_batch_pages() > base.uvm.avg_batch_pages(),
        "batch size: TO {:.1} vs baseline {:.1}",
        to.uvm.avg_batch_pages(),
        base.uvm.avg_batch_pages()
    );
}

#[test]
fn to_is_harmless_when_memory_fits() {
    // When everything fits, faults only occur during cold start, so TO's
    // fault-stall trigger may fire a handful of switches there — but the
    // steady state has no fault stalls and performance must stay within a
    // few percent of baseline (unlike the AnyStall policy of Fig. 5).
    let base = run("BFS-TTC", policies::baseline(), 1.0);
    let to = run("BFS-TTC", policies::to_only(), 1.0);
    let ratio = to.cycles as f64 / base.cycles as f64;
    assert!(ratio < 1.1, "TO cost {ratio:.3}x with memory fitting");
}

#[test]
fn traditional_gpu_context_switching_hurts() {
    // Fig. 5: with memory fitting on-device, provisioning an extra block
    // per SM via context switching on any stall only degrades performance.
    use batmem_types::policy::{SwitchTrigger, ToConfig};
    let base = run("BFS-TTC", policies::baseline(), 1.0);
    let mut policy = policies::to_only();
    policy.oversubscription = ToConfig {
        trigger: SwitchTrigger::AnyStall,
        ..ToConfig::enabled()
    };
    let w = registry::build("BFS-TTC", graph()).unwrap();
    let any_stall = Simulation::builder().policy(policy).memory_ratio(1.0).try_run(w).unwrap();
    assert!(any_stall.ctx_switches > 0, "AnyStall trigger never fired");
    assert!(
        any_stall.cycles > base.cycles,
        "context switching should hurt when memory fits: {} vs {}",
        any_stall.cycles,
        base.cycles
    );
}

#[test]
fn compression_baseline_beats_plain_baseline() {
    let base = run("BFS-TTC", policies::baseline(), 0.5);
    let comp = run("BFS-TTC", policies::baseline_with_compression(), 0.5);
    assert!(comp.speedup_over(&base) > 1.0);
}

#[test]
fn prefetching_reduces_faults() {
    use batmem_types::policy::PrefetchPolicy;
    let with = run("PR", policies::baseline(), 1.0);
    let mut no_pf = policies::baseline();
    no_pf.prefetch = PrefetchPolicy::None;
    let without = run("PR", no_pf, 1.0);
    assert!(with.uvm.prefetches > 0);
    let faults_with: u64 = with.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
    let faults_without: u64 = without.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
    assert!(
        faults_with < faults_without,
        "prefetching should absorb faults: {faults_with} vs {faults_without}"
    );
}

#[test]
fn etc_runs_and_uses_compression_capacity() {
    let (policy, etc) = policies::etc();
    let w = registry::build("BFS-TTC", graph()).unwrap();
    let base = run("BFS-TTC", policies::baseline(), 0.5);
    let m = Simulation::builder().policy(policy).etc(etc).memory_ratio(0.5).try_run(w).unwrap();
    // CC inflates effective capacity over the plain baseline.
    assert!(m.memory_pages.unwrap() > base.memory_pages.unwrap());
    assert!(m.cycles > 0);
}

#[test]
fn sensitivity_fault_handling_time_monotone() {
    // Fig. 18's premise: a costlier runtime makes demand paging slower.
    let mut cheap_cfg = batmem::SimConfig::default();
    cheap_cfg.uvm.fault_handling_base = 20_000;
    let mut costly_cfg = batmem::SimConfig::default();
    costly_cfg.uvm.fault_handling_base = 50_000;
    let cheap = Simulation::builder()
        .config(cheap_cfg)
        .memory_ratio(0.5)
        .try_run(registry::build("BFS-TTC", graph()).unwrap()).unwrap();
    let costly = Simulation::builder()
        .config(costly_cfg)
        .memory_ratio(0.5)
        .try_run(registry::build("BFS-TTC", graph()).unwrap()).unwrap();
    assert!(costly.cycles > cheap.cycles);
}
