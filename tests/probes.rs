//! Probe-layer completeness and ordering tests.
//!
//! The contract under test: the typed event stream is *complete* with
//! respect to the built-in statistics — replaying a tracer's events must
//! reproduce the exact `RunMetrics` counters (batches, faults, migrations,
//! evictions, premature evictions) that the default aggregation reports.
//! If an emission site is dropped or double-fires, these tests break.

use batmem::probes::{MetricsSink, Timeline, Tracer};
use batmem::{policies, ProbeEvent, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

/// A BFS run small enough for an unbounded trace but oversubscribed
/// enough to exercise batches, evictions, refaults, and context switches.
fn traced_bfs_run() -> (RunMetrics, Tracer, Timeline, MetricsSink) {
    let graph = Arc::new(gen::rmat(10, 8, 42));
    let workload = registry::build("BFS-TTC", graph).expect("known workload");
    let tracer = Tracer::bounded(1 << 22); // effectively unbounded here
    let timeline = Timeline::new();
    let sink = MetricsSink::labeled("bfs/to_ue");
    let metrics = Simulation::builder()
        .policy(policies::to_ue())
        .memory_ratio(0.5)
        .probe(tracer.clone())
        .probe(timeline.clone())
        .probe(sink.clone())
        .try_run(workload)
        .expect("simulation succeeds");
    assert_eq!(tracer.dropped(), 0, "trace must be lossless for replay");
    (metrics, tracer, timeline, sink)
}

#[derive(Default)]
struct Replay {
    fault_raised: u64,
    fault_absorbed: u64,
    batches_opened: u64,
    batches_closed: u64,
    migrations_started: u64,
    migrations_completed: u64,
    evictions_begun: u64,
    evictions_finished: u64,
    premature: u64,
    warp_stalls: u64,
    warp_resumes: u64,
    ctx_switches: u64,
    kernels: u64,
    closed_prefetches: u64,
    closed_migrated_bytes: u64,
}

fn replay(tracer: &Tracer) -> Replay {
    let mut r = Replay::default();
    for (_, ev) in tracer.events() {
        match ev {
            ProbeEvent::FaultRaised { .. } => r.fault_raised += 1,
            ProbeEvent::FaultAbsorbed { .. } => r.fault_absorbed += 1,
            ProbeEvent::BatchOpened { .. } => r.batches_opened += 1,
            ProbeEvent::BatchClosed { prefetches, migrated_bytes, .. } => {
                r.batches_closed += 1;
                r.closed_prefetches += u64::from(prefetches);
                r.closed_migrated_bytes += migrated_bytes;
            }
            ProbeEvent::MigrationStarted { .. } => r.migrations_started += 1,
            ProbeEvent::MigrationCompleted { .. } => r.migrations_completed += 1,
            ProbeEvent::EvictionBegun { .. } => r.evictions_begun += 1,
            ProbeEvent::EvictionFinished { .. } => r.evictions_finished += 1,
            ProbeEvent::PrematureEviction { .. } => r.premature += 1,
            ProbeEvent::WarpStalled { .. } => r.warp_stalls += 1,
            ProbeEvent::WarpResumed { .. } => r.warp_resumes += 1,
            ProbeEvent::ContextSwitch { .. } => r.ctx_switches += 1,
            ProbeEvent::KernelLaunched { .. } => r.kernels += 1,
            _ => {}
        }
    }
    r
}

#[test]
fn tracer_replay_reproduces_run_metrics() {
    let (m, tracer, _, _) = traced_bfs_run();
    let r = replay(&tracer);

    // The headline Fig. 11-class counters, event-for-counter.
    assert_eq!(r.batches_closed, m.uvm.num_batches(), "batches");
    assert_eq!(r.batches_opened, m.uvm.num_batches(), "every batch opens once");
    assert_eq!(r.fault_raised, m.uvm.faults_raised, "faults raised");
    assert_eq!(r.fault_absorbed, m.uvm.faults_on_inflight, "absorbed faults");
    assert_eq!(r.evictions_begun, m.uvm.evictions, "evictions");
    assert_eq!(r.evictions_finished, m.uvm.evictions, "eviction completions");
    assert_eq!(r.premature, m.uvm.premature_evictions, "premature evictions");
    assert_eq!(r.ctx_switches, m.ctx_switches, "context switches");
    assert_eq!(r.kernels, u64::from(m.kernels), "kernel launches");

    // Page migrations: one started+completed pair per batch page.
    let batch_pages: u64 = m.uvm.batches.iter().map(|b| u64::from(b.pages())).sum();
    assert_eq!(r.migrations_started, batch_pages, "migrations started");
    assert_eq!(r.migrations_completed, batch_pages, "migrations completed");

    // Per-batch payloads aggregate to the stats totals.
    assert_eq!(r.closed_prefetches, m.uvm.prefetches, "prefetches");
    let migrated: u64 = m.uvm.batches.iter().map(|b| b.migrated_bytes).sum();
    assert_eq!(r.closed_migrated_bytes, migrated, "migrated bytes");

    // Each stalled warp resumed exactly once per stall (the run completed).
    assert_eq!(r.warp_stalls, r.warp_resumes, "stall/resume pairing");

    // The run exercised what it claims to exercise.
    assert!(r.batches_closed > 1, "want a multi-batch run");
    assert!(r.evictions_begun > 0, "want an oversubscribed run");
    assert_eq!(tracer.finished_at(), Some(m.cycles));
}

#[test]
fn event_stream_is_well_ordered() {
    let (_, tracer, _, _) = traced_bfs_run();
    let events = tracer.events();

    // Emission times are monotone non-decreasing.
    let mut prev = 0;
    for &(at, _) in &events {
        assert!(at >= prev, "time went backwards in the trace: {at} < {prev}");
        prev = at;
    }

    // Batches open and close in sequence order, strictly alternating:
    // the runtime processes one batch at a time.
    let mut open: Option<u64> = None;
    let mut last_closed: Option<u64> = None;
    for (_, ev) in &events {
        match *ev {
            ProbeEvent::BatchOpened { batch, .. } => {
                assert_eq!(open, None, "batch {batch} opened while another is open");
                if let Some(prev) = last_closed {
                    assert!(batch > prev, "batch ids must increase");
                }
                open = Some(batch);
            }
            ProbeEvent::BatchClosed { batch, .. } => {
                assert_eq!(open, Some(batch), "batch {batch} closed while not open");
                open = None;
                last_closed = Some(batch);
            }
            ProbeEvent::MigrationStarted { batch, .. } => {
                assert_eq!(open, Some(batch), "migration outside its batch window");
            }
            _ => {}
        }
    }
    assert_eq!(open, None, "a batch was left open at end of run");
}

#[test]
fn timeline_and_sink_agree_with_run_metrics() {
    let (m, _, timeline, sink) = traced_bfs_run();

    assert_eq!(timeline.num_batches() as u64, m.uvm.num_batches());
    assert_eq!(timeline.evictions(), m.uvm.evictions);
    assert_eq!(timeline.premature_evictions(), m.uvm.premature_evictions);
    assert_eq!(timeline.finished_at(), Some(m.cycles));

    // Spans carry the same per-batch payloads as the BatchRecords.
    let spans = timeline.batches();
    for (span, rec) in spans.iter().zip(&m.uvm.batches) {
        assert_eq!(span.batch, rec.id);
        assert_eq!(span.faults, rec.faults);
        assert_eq!(span.prefetches, rec.prefetches);
        assert_eq!(span.migrated_bytes, rec.migrated_bytes);
        assert_eq!(span.opened_at, rec.start);
        assert_eq!(span.closed_at, rec.end);
        assert_eq!(span.first_migration_start, rec.first_migration_start);
    }

    // Histogram mass equals the batch count.
    let sizes: u64 = timeline.size_histogram().iter().map(|&(_, n)| n).sum();
    assert_eq!(sizes, m.uvm.num_batches());

    let rows = sink.rows();
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert_eq!(row.label, "bfs/to_ue");
    assert_eq!(row.cycles, m.cycles);
    assert_eq!(row.batches, m.uvm.num_batches());
    assert_eq!(row.faults_raised, m.uvm.faults_raised);
    assert_eq!(row.evictions, m.uvm.evictions);
    assert_eq!(row.premature_evictions, m.uvm.premature_evictions);
    assert_eq!(row.ctx_switches, m.ctx_switches);
    assert_eq!(row.prefetches, m.uvm.prefetches);
}

#[test]
fn bounded_tracer_drops_oldest_but_keeps_counting() {
    let graph = Arc::new(gen::rmat(9, 8, 42));
    let workload = registry::build("BFS-TTC", graph).expect("known workload");
    let tiny = Tracer::bounded(32);
    let _ = Simulation::builder()
        .policy(policies::baseline())
        .memory_ratio(0.5)
        .probe(tiny.clone())
        .try_run(workload)
        .expect("simulation succeeds");
    assert_eq!(tiny.len(), 32, "ring stays at capacity");
    assert!(tiny.dropped() > 0, "a busy run must overflow 32 slots");
    assert_eq!(tiny.to_jsonl().lines().count(), 32);
}

#[test]
fn probe_attachment_does_not_change_the_simulation() {
    let run = |probe: bool| {
        let graph = Arc::new(gen::rmat(9, 8, 42));
        let workload = registry::build("BFS-TTC", graph).expect("known workload");
        let mut b = Simulation::builder().policy(policies::to_ue()).memory_ratio(0.5);
        if probe {
            b = b.probe(Tracer::bounded(1024)).probe(Timeline::new());
        }
        b.try_run(workload).expect("simulation succeeds")
    };
    let bare = run(false);
    let probed = run(true);
    assert_eq!(bare.cycles, probed.cycles, "probes must not perturb timing");
    assert_eq!(bare.uvm.num_batches(), probed.uvm.num_batches());
    assert_eq!(bare.uvm.evictions, probed.uvm.evictions);
    assert_eq!(bare.ctx_switches, probed.ctx_switches);
}
