//! Registry-level integration tests at the [`Simulation`] builder
//! boundary: spec resolution, preset ↔ spec-string equivalence, and
//! external plugin registration.

use batmem::policies::{self, ConfigName};
use batmem::{PolicyAxis, PolicyConfig, PolicyDescriptor, PolicyRegistry, RunMetrics, Simulation};
use batmem_graph::Csr;
use batmem_types::{PageId, SimError};
use batmem_uvm::{EvictionStrategy, EvictionTiming, MemoryManager, PciePipes};
use batmem_workloads::registry as workloads;
use std::sync::Arc;

const ALL_CONFIGS: [ConfigName; 8] = [
    ConfigName::Baseline,
    ConfigName::BaselineCompressed,
    ConfigName::To,
    ConfigName::Ue,
    ConfigName::ToUe,
    ConfigName::Etc,
    ConfigName::IdealEviction,
    ConfigName::Unlimited,
];

fn graph() -> Arc<Csr> {
    Arc::new(batmem_graph::gen::rmat(8, 4, 1))
}

/// The seed path: policy enums + explicit ETC framework, as every caller
/// ran before the registry existed.
fn run_preset(name: ConfigName) -> RunMetrics {
    let w = workloads::build("BFS-TTC", graph()).unwrap();
    let (policy, etc) = policies::preset(name);
    let mut b = Simulation::builder().policy(policy);
    if name != ConfigName::Unlimited {
        b = b.memory_ratio(0.5);
    }
    if let Some(e) = etc {
        b = b.etc(e);
    }
    b.try_run(w).unwrap()
}

/// The refactored path: the same configuration expressed purely as
/// registry spec strings.
fn run_specs(name: ConfigName) -> RunMetrics {
    let w = workloads::build("BFS-TTC", graph()).unwrap();
    let specs = policies::registry_specs(name);
    let policy = if specs.compression {
        PolicyConfig::baseline_with_compression()
    } else {
        PolicyConfig::baseline()
    };
    let mut b = Simulation::builder()
        .policy(policy)
        .eviction(specs.eviction)
        .prefetch(specs.prefetch)
        .oversubscription(specs.oversubscription);
    if name != ConfigName::Unlimited {
        b = b.memory_ratio(0.5);
    }
    b.try_run(w).unwrap()
}

#[test]
fn every_preset_resolves_through_the_registry() {
    let reg = PolicyRegistry::builtin();
    let ctx = batmem::StrategyCtx { pages_per_region: 32 };
    for name in ALL_CONFIGS {
        let specs = policies::registry_specs(name);
        reg.build_eviction(specs.eviction, &ctx)
            .unwrap_or_else(|e| panic!("{name:?} eviction: {e}"));
        reg.build_prefetcher(specs.prefetch, &ctx)
            .unwrap_or_else(|e| panic!("{name:?} prefetch: {e}"));
        reg.build_oversubscription(specs.oversubscription)
            .unwrap_or_else(|e| panic!("{name:?} oversubscription: {e}"));
    }
}

#[test]
fn spec_driven_runs_match_preset_runs_exactly() {
    // The differential check behind the refactor: a preset expressed as
    // registry spec strings produces bit-identical metrics to the policy
    // enums it replaced, for every named configuration.
    for name in ALL_CONFIGS {
        let preset = run_preset(name);
        let specs = run_specs(name);
        assert_eq!(
            format!("{preset:?}"),
            format!("{specs:?}"),
            "{name:?}: spec-driven run diverged from the preset run"
        );
    }
}

#[test]
fn unknown_spec_is_a_typed_error_at_the_builder() {
    let w = workloads::build("BFS-TTC", graph()).unwrap();
    let err = Simulation::builder().eviction("mru").memory_ratio(0.5).try_run(w).unwrap_err();
    match err {
        SimError::UnknownPolicy { axis, name, known } => {
            assert_eq!(axis, "eviction");
            assert_eq!(name, "mru");
            assert!(known.contains("lru"), "{known}");
        }
        other => panic!("expected UnknownPolicy, got {other:?}"),
    }
    let w = workloads::build("BFS-TTC", graph()).unwrap();
    let err = Simulation::builder().prefetch("tree:0").memory_ratio(0.5).try_run(w).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
}

/// Most-recently-used victim selection — deliberately the opposite of the
/// builtin LRU, so a run under it must behave differently.
#[derive(Debug)]
struct MruEviction;

impl EvictionStrategy for MruEviction {
    fn name(&self) -> &'static str {
        "mru"
    }

    fn pick_victims(
        &mut self,
        mem: &MemoryManager,
        pinned: &dyn Fn(PageId) -> bool,
    ) -> (Vec<PageId>, bool) {
        match mem.pages_in_lru_order().filter(|&p| !pinned(p)).last() {
            Some(p) => (vec![p], false),
            None => mem.pick_victims(pinned),
        }
    }

    fn schedule(&mut self, pipes: &mut PciePipes, avail: u64, page_bytes: u64) -> EvictionTiming {
        let tr = pipes.schedule_d2h(avail.max(pipes.h2d_free_at()), page_bytes);
        pipes.stall_h2d_until(tr.end);
        EvictionTiming::Transfer { start: tr.start, ready: tr.end }
    }
}

#[test]
fn external_plugin_registers_without_touching_the_pipeline() {
    let mut reg = PolicyRegistry::builtin();
    reg.register_eviction(
        PolicyDescriptor {
            axis: PolicyAxis::Eviction,
            name: "mru",
            params: "",
            summary: "most-recently-used victim (integration-test plugin)",
        },
        |_, _| Ok(Box::new(MruEviction)),
    );
    let run = |spec: &str, reg: PolicyRegistry| {
        let w = workloads::build("BFS-TTC", graph()).unwrap();
        Simulation::builder()
            .registry(reg)
            .eviction(spec)
            .prefetch("none")
            .memory_ratio(0.25)
            .try_run(w)
            .unwrap()
    };
    let mru = run("mru", reg);
    let lru = run("lru", PolicyRegistry::builtin());
    assert!(mru.uvm.evictions > 0, "plugin run never evicted");
    assert_eq!(mru.blocks_retired, lru.blocks_retired);
    assert_ne!(
        format!("{:?}", mru.uvm),
        format!("{:?}", lru.uvm),
        "an MRU victim policy should not reproduce the LRU run exactly"
    );
}
