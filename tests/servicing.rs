//! Differential tests for the fault-servicing axis.
//!
//! The default contract: `fault-servicing=cpu` is the seed simulator, bit
//! for bit — same timing arithmetic, same event stream, zeroed handler
//! counters. The `gpu-driven` contract: the far-fault round-trip
//! disappears, handler occupancy is charged per fault, the batch-size
//! economics measurably change, and the whole thing stays deterministic.

use batmem::probes::Tracer;
use batmem::{policies, RunMetrics, Simulation};
use batmem_graph::gen;
use batmem_workloads::registry;
use std::sync::Arc;

fn run_graph(name: &str, servicing: Option<&str>, tracer: Option<Tracer>) -> RunMetrics {
    let graph = Arc::new(gen::rmat(11, 8, 3));
    let w = registry::build(name, graph).unwrap();
    let mut b = Simulation::builder().policy(policies::to_ue()).memory_ratio(0.5);
    if let Some(spec) = servicing {
        b = b.fault_servicing(spec);
    }
    if let Some(t) = tracer {
        b = b.probe(t);
    }
    b.try_run(w).unwrap()
}

/// `fault-servicing=cpu` must be byte-identical to never mentioning the
/// axis at all: same full-timeline metrics (batch records included via the
/// derived `Debug`), and the handler counters pinned to zero.
#[test]
fn cpu_servicing_is_byte_identical_to_the_seed_path() {
    for name in ["BFS-TTC", "SSSP-TWC"] {
        let seed = run_graph(name, None, None);
        let cpu = run_graph(name, Some("cpu"), None);
        assert_eq!(
            format!("{seed:?}"),
            format!("{cpu:?}"),
            "{name}: full metrics timeline diverged"
        );
        assert_eq!(cpu.uvm.gpu_serviced_faults, 0, "{name}: cpu model must not count");
        assert_eq!(cpu.uvm.handler_occupancy_cycles, 0);
    }
}

/// `gpu-driven` must do real work: nonzero handler-occupancy counters, a
/// shorter run than the host round-trip path (no 20k-cycle batch setup,
/// 100-cycle ISR), and a measurably different batch-size histogram.
#[test]
fn gpu_driven_charges_occupancy_and_changes_batch_economics() {
    let cpu = run_graph("SSSP-TWC", Some("cpu"), None);
    let gpu = run_graph("SSSP-TWC", Some("gpu-driven"), None);

    assert!(gpu.uvm.gpu_serviced_faults > 0, "gpu-driven never counted a fault");
    assert!(gpu.uvm.handler_occupancy_cycles > 0, "gpu-driven never charged occupancy");
    assert_eq!(cpu.uvm.gpu_serviced_faults, 0, "cpu model must not count");
    assert_ne!(gpu.cycles, cpu.cycles, "a different cost model must change the run");
    // The handling window collapses from base + per-fault to pure
    // occupancy, so faults accumulate differently while a batch is open:
    // the Fig. 16-style batch-size distribution must shift (bucketed at
    // page granularity — the batches are small at test scale).
    let bucket = 65_536;
    assert_ne!(
        cpu.uvm.batch_size_histogram(bucket),
        gpu.uvm.batch_size_histogram(bucket),
        "batch-size distribution did not shift under gpu-driven servicing"
    );
    assert_ne!(
        cpu.uvm.num_batches(),
        gpu.uvm.num_batches(),
        "shorter handling windows must re-batch the fault stream"
    );
}

/// The servicing summary probe event is emitted exactly when a non-CPU
/// model is active — the default event stream stays identical to the seed.
#[test]
fn servicing_summary_is_emitted_only_for_non_cpu_models() {
    let cpu_tracer = Tracer::bounded(100_000);
    run_graph("BFS-TTC", Some("cpu"), Some(cpu_tracer.clone()));
    assert!(
        !cpu_tracer.to_jsonl().contains("fault_servicing_summary"),
        "cpu model must not emit a servicing summary"
    );

    let gpu_tracer = Tracer::bounded(100_000);
    let gpu = run_graph("BFS-TTC", Some("gpu-driven"), Some(gpu_tracer.clone()));
    let jsonl = gpu_tracer.to_jsonl();
    let line = jsonl
        .lines()
        .find(|l| l.contains("fault_servicing_summary"))
        .expect("gpu-driven must emit a servicing summary");
    assert!(
        line.contains(&format!("\"occupancy_cycles\":{}", gpu.uvm.handler_occupancy_cycles)),
        "summary must carry the charged occupancy: {line}"
    );
    assert!(line.contains(&format!("\"faults\":{}", gpu.uvm.gpu_serviced_faults)), "{line}");
}

/// GPU-driven runs stay bit-for-bit deterministic, including the handler
/// counters and the full batch timeline.
#[test]
fn gpu_driven_is_deterministic() {
    let a = run_graph("BFS-TTC", Some("gpu-driven"), None);
    let b = run_graph("BFS-TTC", Some("gpu-driven"), None);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// The per-fault occupancy parameter is live: a pricier handler makes the
/// run strictly slower and charges proportionally more occupancy.
#[test]
fn occupancy_parameter_scales_the_charge() {
    let cheap = run_graph("BFS-TTC", Some("gpu-driven:100"), None);
    let pricey = run_graph("BFS-TTC", Some("gpu-driven:10000"), None);
    assert!(pricey.cycles > cheap.cycles, "10000-cycle handlers must cost more than 100");
    assert!(pricey.uvm.handler_occupancy_cycles > cheap.uvm.handler_occupancy_cycles);
}
