//! Differential determinism of the sharded engine.
//!
//! The contract under test: `SimulationBuilder::threads(n)` is a pure
//! performance knob. For every paper preset (and a custom combo that
//! exercises the coalescing and fault-servicing axes), a sharded run must
//! be **bit-identical** to the serial reference — not just the headline
//! cycle count, but the complete `RunMetrics` structure and the full
//! typed probe stream, event for event, cycle for cycle.

use batmem::policies::{self, ConfigName};
use batmem::probes::Tracer;
use batmem::{RunMetrics, Simulation};
use batmem_graph::{gen, Csr};
use batmem_workloads::registry;
use std::sync::Arc;

const SCALE: u32 = 10;
const EDGE_FACTOR: u32 = 8;
const SEED: u64 = 42;

/// One traced BFS run under `name` at `threads`; returns the sealed
/// metrics plus the lossless probe stream serialized to JSONL.
fn preset_run(name: ConfigName, threads: usize, graph: &Arc<Csr>) -> (RunMetrics, String) {
    let workload = registry::build("BFS-TTC", Arc::clone(graph)).expect("known workload");
    let tracer = Tracer::bounded(1 << 22); // effectively unbounded here
    let (policy, etc) = policies::preset(name);
    let mut b = Simulation::builder().policy(policy).threads(threads).probe(tracer.clone());
    if let Some(e) = etc {
        b = b.etc(e);
    }
    if name != ConfigName::Unlimited {
        b = b.memory_ratio(0.5);
    }
    let metrics = b.try_run(workload).expect("simulation succeeds");
    assert_eq!(tracer.dropped(), 0, "trace must be lossless for the diff");
    (metrics, tracer.to_jsonl())
}

/// `RunMetrics` has no `PartialEq` by design (it grows freely); the Debug
/// rendering covers every field, so comparing it compares the structure.
fn assert_identical(
    serial: &(RunMetrics, String),
    sharded: &(RunMetrics, String),
    what: &str,
    threads: usize,
) {
    assert_eq!(
        format!("{:?}", serial.0),
        format!("{:?}", sharded.0),
        "{what}: RunMetrics diverged at {threads} threads"
    );
    assert_eq!(serial.1, sharded.1, "{what}: probe stream diverged at {threads} threads");
}

#[test]
fn every_preset_is_bit_identical_across_thread_counts() {
    let graph = Arc::new(gen::rmat(SCALE, EDGE_FACTOR, SEED));
    for &name in ConfigName::all() {
        let serial = preset_run(name, 1, &graph);
        for threads in [2, 8] {
            let sharded = preset_run(name, threads, &graph);
            assert_identical(&serial, &sharded, name.label(), threads);
        }
    }
}

#[test]
fn coalescing_gpu_driven_combo_is_bit_identical_across_thread_counts() {
    // The custom axes route through different engine paths (large-page
    // promotion, on-GPU fault servicing) than the presets; pin them too.
    let graph = Arc::new(gen::rmat(SCALE, EDGE_FACTOR, SEED));
    let run = |threads: usize| {
        let workload = registry::build("BFS-TTC", Arc::clone(&graph)).expect("known workload");
        let tracer = Tracer::bounded(1 << 22);
        let metrics = Simulation::builder()
            .policy(policies::baseline())
            .coalesce("greedy")
            .fault_servicing("gpu-driven")
            .memory_ratio(0.5)
            .threads(threads)
            .probe(tracer.clone())
            .try_run(workload)
            .expect("simulation succeeds");
        assert_eq!(tracer.dropped(), 0, "trace must be lossless for the diff");
        (metrics, tracer.to_jsonl())
    };
    let serial = run(1);
    for threads in [2, 8] {
        let sharded = run(threads);
        assert_identical(&serial, &sharded, "greedy+gpu-driven", threads);
    }
}

#[test]
fn forced_bank_dispatch_is_bit_identical_across_thread_counts() {
    // `bank_dispatch_min = 1` forces every deferred cycle batch through
    // the bank-partitioned fan-out path (DESIGN.md §14) — the realistic
    // default threshold would let small batches replay inline and leave
    // the worker protocol unexercised at this scale. Crossed with bank
    // counts to cover the dispatch round-robin at both extremes.
    let graph = Arc::new(gen::rmat(SCALE, EDGE_FACTOR, SEED));
    let run = |threads: usize, banks: u32| {
        let workload = registry::build("BFS-TTC", Arc::clone(&graph)).expect("known workload");
        let tracer = Tracer::bounded(1 << 22);
        let mut config = batmem_types::SimConfig::default();
        config.mem.l2_banks = banks;
        config.mem.bank_dispatch_min = 1;
        config.policy = policies::preset(ConfigName::ToUe).0;
        let metrics = Simulation::builder()
            .config(config)
            .memory_ratio(0.5)
            .threads(threads)
            .probe(tracer.clone())
            .try_run(workload)
            .expect("simulation succeeds");
        assert_eq!(tracer.dropped(), 0, "trace must be lossless for the diff");
        (metrics, tracer.to_jsonl())
    };
    // The serial reference is recomputed per bank count: banking never
    // changes an access outcome, but the per-bank stat vectors it reports
    // legitimately differ in shape.
    for banks in [2u32, 8] {
        let serial = run(1, banks);
        for threads in [2usize, 8] {
            let sharded = run(threads, banks);
            assert_identical(
                &serial,
                &sharded,
                &format!("forced dispatch, {banks} banks"),
                threads,
            );
        }
    }
}
